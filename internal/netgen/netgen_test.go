package netgen

import (
	"math"
	"math/rand" //qap:allow walltime -- tests seed explicitly
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 10, 500
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Packets) != len(b.Packets) {
		t.Fatalf("non-deterministic length: %d vs %d", len(a.Packets), len(b.Packets))
	}
	for i := range a.Packets {
		if a.Packets[i] != b.Packets[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a.Packets[i], b.Packets[i])
		}
	}
	cfg.Seed = 2
	c := Generate(cfg)
	same := len(a.Packets) == len(c.Packets)
	if same {
		diff := false
		for i := range a.Packets {
			if a.Packets[i] != c.Packets[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestGenerateTimeOrderedAndSized(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 20, 300
	tr := Generate(cfg)
	if got, want := len(tr.Packets), 20*300; got != want {
		t.Fatalf("packet count = %d, want %d", got, want)
	}
	for i := 1; i < len(tr.Packets); i++ {
		if tr.Packets[i].Time < tr.Packets[i-1].Time {
			t.Fatal("packets not time ordered")
		}
	}
	last := tr.Packets[len(tr.Packets)-1]
	if last.Time >= uint64(cfg.DurationSec) {
		t.Errorf("time %d out of range", last.Time)
	}
}

func TestFlowFlagInvariants(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 30, 1000
	cfg.AttackFraction = 0.1
	tr := Generate(cfg)

	// OR flags per 5-tuple flow: attack flows OR to exactly
	// AttackPattern, normal flows never do.
	type key struct{ s, d, sp, dp uint64 }
	or := make(map[key]uint64)
	for _, p := range tr.Packets {
		k := key{p.SrcIP, p.DestIP, p.SrcPort, p.DestPort}
		or[k] |= p.Flags
	}
	attacks := 0
	for _, flags := range or {
		if flags == AttackPattern {
			attacks++
		} else if flags&FlagURG != 0 && flags&FlagRST != 0 && flags&FlagSYN != 0 &&
			flags&(FlagACK|FlagPSH|FlagFIN) == 0 {
			t.Fatalf("attack-like OR %b not equal to pattern", flags)
		}
	}
	if attacks == 0 {
		t.Fatal("no attack flows generated")
	}
	frac := float64(tr.AttackFlows) / float64(tr.TotalFlows)
	if frac < 0.05 || frac > 0.2 {
		t.Errorf("attack fraction %.3f far from configured 0.1", frac)
	}
}

func TestZipfSkew(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 30, 2000
	tr := Generate(cfg)
	counts := make(map[uint64]int)
	for _, p := range tr.Packets {
		counts[p.SrcIP]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	// With Zipf skew the most popular host carries far more than the
	// uniform share.
	uniform := len(tr.Packets) / len(counts)
	if maxCount < 4*uniform {
		t.Errorf("insufficient skew: max %d vs uniform %d over %d hosts", maxCount, uniform, len(counts))
	}
}

func TestTupleOrderMatchesSchema(t *testing.T) {
	p := Packet{Time: 1, SrcIP: 2, DestIP: 3, SrcPort: 4, DestPort: 5, Len: 6, Flags: 7, Seq: 8}
	tp := p.Tuple()
	if len(tp) != 8 {
		t.Fatalf("tuple width = %d", len(tp))
	}
	for i, want := range []uint64{1, 2, 3, 4, 5, 6, 7, 8} {
		got, _ := tp[i].AsUint()
		if got != want {
			t.Errorf("col %d = %d, want %d", i, got, want)
		}
	}
}

func TestSequenceNumbersConsecutivePerFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 20, 500
	tr := Generate(cfg)
	type key struct{ s, d, sp, dp uint64 }
	maxSeq := make(map[key]uint64)
	count := make(map[key]uint64)
	for _, p := range tr.Packets {
		k := key{p.SrcIP, p.DestIP, p.SrcPort, p.DestPort}
		if p.Seq >= maxSeq[k] {
			maxSeq[k] = p.Seq
		}
		count[k]++
	}
	// Within one flow, sequence numbers are 0..n-1. Rare 5-tuple
	// collisions between flows and the trace-length truncation can
	// perturb a few, so require the invariant for the vast majority.
	good := 0
	for k, c := range count {
		if maxSeq[k] == c-1 {
			good++
		}
	}
	if frac := float64(good) / float64(len(count)); frac < 0.9 {
		t.Errorf("only %.2f of flows have consecutive sequences", frac)
	}
}

func TestConfigDefaultsApplied(t *testing.T) {
	tr := Generate(Config{Seed: 3, DurationSec: 2, PacketsPerSec: 100})
	if len(tr.Packets) != 200 {
		t.Errorf("defaults should still produce the requested volume, got %d", len(tr.Packets))
	}
}

// TestGenerateEdgeConfigs drives Generate with the extreme and
// malformed parameters qgen's randomized workloads can produce: the
// generator must clamp or default every field rather than hand a bad
// skew to rand.NewZipf (nil Zipf → panic) or divide by a zero mean.
func TestGenerateEdgeConfigs(t *testing.T) {
	cases := map[string]Config{
		"zero value":        {},
		"negative duration": {Seed: 2, DurationSec: -5, PacketsPerSec: -3},
		"single-host pools": {Seed: 3, DurationSec: 2, PacketsPerSec: 50, SrcHosts: 1, DstHosts: 1},
		"nan zipf":          {Seed: 4, DurationSec: 2, PacketsPerSec: 50, ZipfS: math.NaN()},
		"inf zipf":          {Seed: 5, DurationSec: 2, PacketsPerSec: 50, ZipfS: math.Inf(1)},
		"nan mean flow":     {Seed: 6, DurationSec: 2, PacketsPerSec: 50, MeanFlowPackets: math.NaN()},
		"negative mean":     {Seed: 7, DurationSec: 2, PacketsPerSec: 50, MeanFlowPackets: -4},
		"nan attack":        {Seed: 8, DurationSec: 2, PacketsPerSec: 50, AttackFraction: math.NaN()},
		"attack above one":  {Seed: 9, DurationSec: 2, PacketsPerSec: 50, AttackFraction: 7},
		"negative ports":    {Seed: 10, DurationSec: 2, PacketsPerSec: 50, Ports: -1},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			tr := Generate(cfg)
			if len(tr.Packets) == 0 {
				t.Fatal("edge config generated an empty trace")
			}
			for i := 1; i < len(tr.Packets); i++ {
				if tr.Packets[i].Time < tr.Packets[i-1].Time {
					t.Fatalf("packets out of time order at %d", i)
				}
			}
		})
	}
}

// TestGenerateSingleHostPools pins the degenerate-Zipf behavior: a
// one-address pool sends every packet from (to) that single address.
func TestGenerateSingleHostPools(t *testing.T) {
	tr := Generate(Config{Seed: 11, DurationSec: 2, PacketsPerSec: 80, SrcHosts: 1, DstHosts: 1})
	for _, p := range tr.Packets {
		if p.SrcIP != 0x0A000000 || p.DestIP != 0xC0A80000 {
			t.Fatalf("single-host pools must pin the addresses, got %x -> %x", p.SrcIP, p.DestIP)
		}
	}
}

// TestGenerateAttackFractionOne checks the clamped all-attack extreme.
func TestGenerateAttackFractionOne(t *testing.T) {
	tr := Generate(Config{Seed: 12, DurationSec: 2, PacketsPerSec: 50, AttackFraction: 2})
	if tr.AttackFlows != tr.TotalFlows {
		t.Errorf("AttackFraction clamped to 1 should mark every flow: %d/%d", tr.AttackFlows, tr.TotalFlows)
	}
}

// TestGeometricGuards covers geometric's mean <= 1 / NaN guard and the
// sanity of a real mean.
func TestGeometricGuards(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, mean := range []float64{0, -3, 1, 0.25, math.NaN()} {
		if n := geometric(r, mean); n != 0 {
			t.Errorf("geometric(%v) = %d, want 0", mean, n)
		}
	}
	sum := 0
	for i := 0; i < 2000; i++ {
		sum += geometric(r, 8)
	}
	if avg := float64(sum) / 2000; avg < 4 || avg > 12 {
		t.Errorf("geometric(8) sample mean %.1f implausible", avg)
	}
}
