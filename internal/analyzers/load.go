package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Dir is the package directory.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// ModuleRoot walks upward from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analyzers: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module directive from root/go.mod.
func modulePath(root string) (string, error) {
	b, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analyzers: no module directive in %s/go.mod", root)
}

// Load parses and type-checks every non-test package under the module
// root, in sorted directory order. The source importer resolves
// imports relative to the working directory, so Load chdirs to the
// module root for the duration of the call.
func Load(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	// The go/build machinery behind the source importer resolves
	// module imports from the working directory.
	oldwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	if err := os.Chdir(root); err != nil {
		return nil, err
	}
	defer os.Chdir(oldwd)

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(fset, imp, root, modPath, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// packageDirs lists directories under root holding non-test Go files.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// loadDir parses and type-checks one package directory. Test files are
// excluded: the determinism contract covers what ships, and tests
// legitimately compare wall-clock behavior.
func loadDir(fset *token.FileSet, imp types.Importer, root, modPath, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, err
	}
	path := modPath
	if rel != "." {
		path = modPath + "/" + filepath.ToSlash(rel)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analyzers: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
