package exec

import (
	"testing"

	"qap/internal/gsql"
	"qap/internal/sqlval"
)

// buildPaneSub builds the per-pane sub-aggregation feeding a window:
// GROUP BY time/10 AS pane, srcIP with COUNT partials.
func buildPaneSub(out Consumer) *Aggregate {
	r := res("time", "srcIP")
	countFac, _ := NewAccumFactory("COUNT")
	return NewAggregate(AggregateConfig{
		GroupBy: []EvalFunc{
			MustCompile(gsql.MustParseExpr("time / 10"), r, nil),
			MustCompile(gsql.MustParseExpr("srcIP"), r, nil),
		},
		EpochIdx:  0,
		EpochOfWM: func(wm uint64) sqlval.Value { return u(wm / 10) },
		Aggs:      []AggColumn{{Factory: countFac}},
		Out:       out,
	})
}

func newCountWindow(panes uint64, out Consumer) *SlidingWindow {
	sumFac, _ := NewAccumFactory("SUM")
	return NewSlidingWindow(SlidingWindowConfig{
		GroupCols: 2,
		EpochIdx:  0,
		PaneOfWM:  func(wm uint64) sqlval.Value { return u(wm / 10) },
		Panes:     panes,
		Mergers:   []AccumFactory{sumFac},
		Out:       out,
	})
}

func TestSlidingWindowMergesPanes(t *testing.T) {
	sink := &Collector{}
	win := newCountWindow(3, sink) // window = 3 panes of 10s = 30s
	sub := buildPaneSub(win)
	// Source 1: 2 packets in pane 0, 1 in pane 1, 1 in pane 3.
	for _, tm := range []uint64{1, 5, 12, 35} {
		sub.Push(Tuple{u(tm), u(1)})
		sub.Advance(tm)
		win.Advance(tm)
	}
	sub.Flush()
	win.Flush()
	// Windows ending at panes 0..3:
	//   p0: panes {0}      -> 2
	//   p1: panes {0,1}    -> 3
	//   p2: panes {0,1,2}  -> 3
	//   p3: panes {1,2,3}  -> 2
	want := map[uint64]uint64{0: 2, 1: 3, 2: 3, 3: 2}
	if len(sink.Rows) != len(want) {
		t.Fatalf("rows = %v", sink.Rows)
	}
	for _, row := range sink.Rows {
		pane, _ := row[0].AsUint()
		cnt, _ := row[2].AsUint()
		if want[pane] != cnt {
			t.Errorf("window ending pane %d = %d, want %d", pane, cnt, want[pane])
		}
	}
}

func TestSlidingWindowPerGroup(t *testing.T) {
	sink := &Collector{}
	win := newCountWindow(2, sink)
	sub := buildPaneSub(win)
	sub.Push(Tuple{u(1), u(7)})
	sub.Push(Tuple{u(11), u(8)})
	sub.Flush()
	win.Flush()
	// Group 7 appears in windows ending p0 and p1 (its pane-0 data is
	// inside both); group 8 only in the window ending p1.
	byKey := map[string]int{}
	for _, row := range sink.Rows {
		src, _ := row[1].AsUint()
		pane, _ := row[0].AsUint()
		byKey[string(rune('0'+src))+":"+string(rune('0'+pane))]++
	}
	if len(sink.Rows) != 3 {
		t.Fatalf("rows = %v", sink.Rows)
	}
	if byKey["7:0"] != 1 || byKey["7:1"] != 1 || byKey["8:1"] != 1 {
		t.Errorf("window membership wrong: %v", byKey)
	}
}

func TestSlidingWindowEviction(t *testing.T) {
	win := newCountWindow(3, Discard{})
	sub := buildPaneSub(win)
	for tm := uint64(0); tm < 500; tm += 5 {
		sub.Push(Tuple{u(tm), u(tm % 2)})
		sub.Advance(tm)
		win.Advance(tm)
	}
	// Only ~window-size panes per group stay buffered.
	if got := win.BufferedPanes(); got > 10 {
		t.Errorf("buffered panes = %d, eviction broken", got)
	}
}

func TestSlidingWindowHavingAndPost(t *testing.T) {
	sumFac, _ := NewAccumFactory("SUM")
	gr := res("pane", "srcIP", "cnt")
	sink := &Collector{}
	win := NewSlidingWindow(SlidingWindowConfig{
		GroupCols: 2,
		EpochIdx:  0,
		PaneOfWM:  func(wm uint64) sqlval.Value { return u(wm / 10) },
		Panes:     2,
		Mergers:   []AccumFactory{sumFac},
		Having:    MustCompile(gsql.MustParseExpr("cnt >= 2"), gr, nil),
		Post: []EvalFunc{
			MustCompile(gsql.MustParseExpr("srcIP"), gr, nil),
			MustCompile(gsql.MustParseExpr("cnt * 100"), gr, nil),
		},
		Out: sink,
	})
	sub := buildPaneSub(win)
	sub.Push(Tuple{u(1), u(9)})
	sub.Push(Tuple{u(11), u(9)})
	sub.Push(Tuple{u(11), u(5)}) // count 1: filtered by HAVING
	sub.Flush()
	win.Flush()
	// Window p0 for group 9 has count 1 (filtered); window p1 has 2.
	if len(sink.Rows) != 1 {
		t.Fatalf("rows = %v", sink.Rows)
	}
	if !sink.Rows[0][0].Equal(u(9)) || !sink.Rows[0][1].Equal(u(200)) {
		t.Errorf("row = %v", sink.Rows[0])
	}
}
