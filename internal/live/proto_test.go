package live

import (
	"reflect"
	"strings"
	"testing"

	"qap/internal/exec"
	"qap/internal/sqlval"
)

func protoTuple(vals ...sqlval.Value) exec.Tuple { return exec.Tuple(vals) }

func protoBatch() exec.Batch {
	return exec.Batch{
		protoTuple(sqlval.Uint(7), sqlval.Int(-3), sqlval.Str("tcp")),
		protoTuple(sqlval.Uint(8), sqlval.Float(1.5), sqlval.Bool(true)),
	}
}

// TestHelloRoundTrip: a Hello must decode back bit-identical, including
// the stream cursor order the node's delivery tags are defined against.
func TestHelloRoundTrip(t *testing.T) {
	in := &Hello{
		Version:     ProtocolVersion,
		Host:        3,
		BatchSize:   256,
		ResumeLink:  1<<40 | 17,
		Streams:     []string{"tcp", "udp"},
		Fingerprint: "plan=abc columnar=true",
	}
	out, err := decodeHello(in.encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("hello round-trip:\n in=%+v\nout=%+v", in, out)
	}
}

// TestWelcomeRoundTrip covers both flag settings.
func TestWelcomeRoundTrip(t *testing.T) {
	for _, in := range []*Welcome{
		{Version: ProtocolVersion, ResumeFeed: 0, HasResult: false},
		{Version: ProtocolVersion, ResumeFeed: 99, HasResult: true},
	} {
		out, err := decodeWelcome(in.encode(nil))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("welcome round-trip:\n in=%+v\nout=%+v", in, out)
		}
	}
}

// TestFeedRoundTrip: rounds, flags, and embedded batch blobs all
// survive the wire. The decoded message must compare equal except for
// nil-vs-empty slice headers, which the encoding cannot distinguish.
func TestFeedRoundTrip(t *testing.T) {
	in := &FeedMsg{
		Seq:  5,
		Last: true,
		Rounds: []Round{
			{Round: 0, WM: 16, Adv: true, Flush: false, Groups: []Group{
				{Tag: 1, Stream: 0, Part: 2, Tuples: protoBatch()},
				{Tag: 9, Stream: 1, Part: 0, Tuples: exec.Batch{protoTuple(sqlval.Null)}},
			}},
			{Round: 1, WM: 32, Adv: false, Flush: true},
		},
	}
	out, err := decodeFeed(in.encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.Last != in.Last || len(out.Rounds) != len(in.Rounds) {
		t.Fatalf("feed header round-trip: %+v", out)
	}
	for i := range in.Rounds {
		ri, ro := in.Rounds[i], out.Rounds[i]
		if ri.Round != ro.Round || ri.WM != ro.WM || ri.Adv != ro.Adv || ri.Flush != ro.Flush {
			t.Fatalf("round %d: in=%+v out=%+v", i, ri, ro)
		}
		if len(ri.Groups) != len(ro.Groups) {
			t.Fatalf("round %d: %d groups decoded, want %d", i, len(ro.Groups), len(ri.Groups))
		}
		for g := range ri.Groups {
			gin, gout := ri.Groups[g], ro.Groups[g]
			if gin.Tag != gout.Tag || gin.Stream != gout.Stream || gin.Part != gout.Part {
				t.Fatalf("round %d group %d: in=%+v out=%+v", i, g, gin, gout)
			}
			if !reflect.DeepEqual(gin.Tuples, gout.Tuples) {
				t.Fatalf("round %d group %d tuples differ", i, g)
			}
		}
	}
}

// TestLinkRoundTrip exercises all four item kinds plus the negative
// Through sentinel a node uses before its first completed round.
func TestLinkRoundTrip(t *testing.T) {
	in := &LinkMsg{
		Seq:     11,
		Through: -1,
		Done:    true,
		Items: []Item{
			{Round: 0, Tag: 4, Kind: ItemPush, Edge: 2, WM: 16, MWM: 8, Tuple: protoTuple(sqlval.Uint(1))},
			{Round: 0, Tag: 5, Kind: ItemPushBatch, Edge: 2, WM: 16, MWM: 8, Batch: protoBatch()},
			{Round: 1, Tag: 0, Kind: ItemAdvance, Edge: 3, WM: 32, MWM: 16},
			{Round: 1, Tag: 1, Kind: ItemFlush, Edge: 3, WM: 32, MWM: 32},
		},
	}
	out, err := decodeLink(in.encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != in.Seq || out.Through != in.Through || out.Done != in.Done {
		t.Fatalf("link header round-trip: %+v", out)
	}
	if !reflect.DeepEqual(in.Items, out.Items) {
		t.Fatalf("link items round-trip:\n in=%+v\nout=%+v", in.Items, out.Items)
	}
	// Host is stamped by the receiving session, never carried.
	if out.Host != 0 {
		t.Fatalf("decoded link carries host %d", out.Host)
	}
}

// TestDecodeSeq: the seq peek shared by feed, link, and result frames.
func TestDecodeSeq(t *testing.T) {
	m := &FeedMsg{Seq: 1 << 33}
	seq, err := decodeSeq(m.encode(nil))
	if err != nil || seq != 1<<33 {
		t.Fatalf("decodeSeq = %d, %v", seq, err)
	}
	if _, err := decodeSeq([]byte{1, 2}); err == nil {
		t.Fatal("decodeSeq accepted a short frame")
	}
}

// TestDecodeTruncation: every strict prefix of a valid frame must be
// rejected with a positioned error, never a panic or a silent partial
// decode — the property that makes a torn TCP read safe.
func TestDecodeTruncation(t *testing.T) {
	hello := (&Hello{Version: 1, Streams: []string{"tcp"}, Fingerprint: "f"}).encode(nil)
	welcome := (&Welcome{Version: 1, HasResult: true}).encode(nil)
	feed := (&FeedMsg{Seq: 1, Rounds: []Round{{WM: 16, Groups: []Group{{Tuples: protoBatch()}}}}}).encode(nil)
	link := (&LinkMsg{Seq: 2, Items: []Item{{Kind: ItemPush, Tuple: protoTuple(sqlval.Uint(1))}}}).encode(nil)
	cases := []struct {
		name   string
		data   []byte
		decode func([]byte) error
	}{
		{"hello", hello, func(b []byte) error { _, err := decodeHello(b); return err }},
		{"welcome", welcome, func(b []byte) error { _, err := decodeWelcome(b); return err }},
		{"feed", feed, func(b []byte) error { _, err := decodeFeed(b); return err }},
		{"link", link, func(b []byte) error { _, err := decodeLink(b); return err }},
	}
	for _, tc := range cases {
		if err := tc.decode(tc.data); err != nil {
			t.Fatalf("%s: full frame rejected: %v", tc.name, err)
		}
		for n := 0; n < len(tc.data); n++ {
			if err := tc.decode(tc.data[:n]); err == nil {
				t.Fatalf("%s: %d-byte prefix of a %d-byte frame decoded", tc.name, n, len(tc.data))
			}
		}
		// Trailing garbage is rejected too: frames are delimited by the
		// transport, so slack bytes mean a framing bug.
		if err := tc.decode(append(append([]byte(nil), tc.data...), 0)); err == nil ||
			!strings.Contains(err.Error(), "trailing bytes") {
			t.Fatalf("%s: trailing byte not rejected (err %v)", tc.name, err)
		}
	}
}

// TestDecodeLinkBadItems: the two malformed-item branches — an unknown
// kind byte and a push item carrying other than one tuple.
func TestDecodeLinkBadItems(t *testing.T) {
	bad := (&LinkMsg{Items: []Item{{Kind: ItemKind(9)}}}).encode(nil)
	if _, err := decodeLink(bad); err == nil || !strings.Contains(err.Error(), "unknown item kind") {
		t.Fatalf("unknown kind not rejected (err %v)", err)
	}

	// A push item with two tuples cannot be produced by encode; build
	// the frame by hand.
	var dst []byte
	dst = appendU64(dst, 1)                  // seq
	dst = append(dst, 0)                     // flags
	dst = appendU64(dst, 0)                  // through
	dst = appendU32(dst, 1)                  // item count
	dst = appendU32(dst, 0)                  // round
	dst = appendU64(dst, 0)                  // tag
	dst = append(dst, byte(ItemPush))        // kind
	dst = appendU32(dst, 0)                  // edge
	dst = appendU64(dst, 0)                  // wm
	dst = appendU64(dst, 0)                  // mwm
	dst = appendBatchBlob(dst, protoBatch()) // 2 tuples where 1 is required
	if _, err := decodeLink(dst); err == nil || !strings.Contains(err.Error(), "push item carries 2 tuples") {
		t.Fatalf("multi-tuple push item not rejected (err %v)", err)
	}
}

// TestDecodeBatchBlobCorrupt: a batch blob whose inner bytes fail the
// exec codec must surface the positioned wire error, not a panic.
func TestDecodeBatchBlobCorrupt(t *testing.T) {
	var dst []byte
	dst = appendU64(dst, 1) // seq
	dst = append(dst, 0)    // flags
	dst = appendU32(dst, 1) // round count
	dst = appendU32(dst, 0) // round
	dst = appendU64(dst, 0) // wm
	dst = append(dst, 0)    // round flags
	dst = appendU32(dst, 1) // group count
	dst = appendU64(dst, 0) // tag
	dst = appendU16(dst, 0) // stream
	dst = appendU32(dst, 0) // part
	// Blob announcing one tuple but carrying no bytes for it.
	dst = appendU32(dst, 4)
	dst = appendU32(dst, 1)
	if _, err := decodeFeed(dst); err == nil || !strings.Contains(err.Error(), "group tuples") {
		t.Fatalf("corrupt batch blob not rejected (err %v)", err)
	}
}
