package core

import (
	"strings"
	"testing"

	"qap/internal/gsql"
	"qap/internal/plan"
	"qap/internal/schema"
)

const tcpDDL = `TCP(time increasing, srcIP, destIP, srcPort, destPort, len, flags)`

func buildGraph(t *testing.T, ddl, queries string) *plan.Graph {
	t.Helper()
	cat, err := schema.Parse(ddl)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := gsql.ParseQuerySet(queries)
	if err != nil {
		t.Fatal(err)
	}
	g, err := plan.Build(cat, qs)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// Paper Section 3.2 / 6.3 query set.
const complexSet = `
query flows:
SELECT tb, srcIP, destIP, COUNT(*) as cnt
FROM TCP
GROUP BY time/60 as tb, srcIP, destIP

query heavy_flows:
SELECT tb, srcIP, max(cnt) as max_cnt
FROM flows
GROUP BY tb, srcIP

query flow_pairs:
SELECT S1.tb, S1.srcIP, S1.max_cnt, S2.max_cnt
FROM heavy_flows S1, heavy_flows S2
WHERE S1.srcIP = S2.srcIP and S1.tb = S2.tb+1
`

func TestNodeRequirementsPaperSection32(t *testing.T) {
	g := buildGraph(t, tcpDDL, complexSet)
	flows, _ := g.Node("flows")
	hf, _ := g.Node("heavy_flows")
	fp, _ := g.Node("flow_pairs")

	// gamma1 benefits from (srcIP, destIP).
	rf := NodeRequirement(flows)
	if !rf.Set.Equal(MustParseSet("srcIP, destIP")) {
		t.Errorf("flows requirement = %s, want (destIP, srcIP)", rf.Set)
	}
	// gamma2 and the self-join want (srcIP).
	if r := NodeRequirement(hf); !r.Set.Equal(MustParseSet("srcIP")) {
		t.Errorf("heavy_flows requirement = %s", r.Set)
	}
	if r := NodeRequirement(fp); !r.Set.Equal(MustParseSet("srcIP")) {
		t.Errorf("flow_pairs requirement = %s", r.Set)
	}
}

func TestReconcileSetsPaperSection4(t *testing.T) {
	// Reconcile({srcIP,destIP}, {srcIP,destIP,srcPort,destPort}) =
	// {srcIP, destIP}.
	got := Reconcile(MustParseSet("srcIP, destIP"), MustParseSet("srcIP, destIP, srcPort, destPort"))
	if !got.Equal(MustParseSet("srcIP, destIP")) {
		t.Errorf("reconcile = %s", got)
	}
	// Reconcile({time/60, srcIP, destIP}, {time/90, srcIP & 0xFFF0}) =
	// {time/180, srcIP & 0xFFF0}.
	got = Reconcile(MustParseSet("time/60, srcIP, destIP"), MustParseSet("time/90, srcIP & 0xFFF0"))
	if !got.Equal(MustParseSet("time/180, srcIP & 0xFFF0")) {
		t.Errorf("reconcile = %s, want (srcIP & 0xFFF0, time / 180)", got)
	}
	// Conflicting sets reconcile to empty.
	got = Reconcile(MustParseSet("srcIP"), MustParseSet("destIP"))
	if !got.IsEmpty() {
		t.Errorf("srcIP vs destIP should conflict, got %s", got)
	}
}

func TestCompatibilityPaperSection34(t *testing.T) {
	g := buildGraph(t, `PKT(time increasing, srcIP, destIP, len)`, `
SELECT tb, srcIP, destIP, sum(len) AS bytes
FROM PKT
GROUP BY time/60 AS tb, srcIP, destIP`)
	n := g.Roots()[0]
	// (time/60, srcIP, destIP) lets each host run the aggregation
	// locally.
	if !Compatible(MustParseSet("time/60, srcIP, destIP"), n) {
		t.Error("(time/60, srcIP, destIP) should be compatible")
	}
	// The paper's explicitly compatible example, with coarsened
	// scalar expressions including the temporal one.
	if !Compatible(MustParseSet("(time/60)/2, srcIP & 0xFFF0, destIP & 0xFF00"), n) {
		t.Error("{(time/60)/2, srcIP & 0xFFF0, destIP & 0xFF00} should be compatible")
	}
	// The paper's explicitly incompatible example: raw time splits a
	// 60-second epoch across partitions.
	if Compatible(MustParseSet("time, srcIP, destIP"), n) {
		t.Error("{time, srcIP, destIP} must be incompatible")
	}
	// Partitioning on ports splits groups.
	if Compatible(MustParseSet("srcPort"), n) {
		t.Error("srcPort not in group-by; must be incompatible")
	}
	// The empty set is compatible with nothing.
	if Compatible(nil, n) {
		t.Error("empty set must be incompatible")
	}
	// Subsets of a compatible set are compatible.
	if !Compatible(MustParseSet("srcIP"), n) || !Compatible(MustParseSet("destIP"), n) {
		t.Error("singleton subsets should be compatible")
	}
}

func TestTcpFlowsFlowCntExample(t *testing.T) {
	// Paper Section 4 example: tcp_flows and flow_cnt.
	g := buildGraph(t, tcpDDL, `
query tcp_flows:
SELECT tb, srcIP, destIP, srcPort, destPort, COUNT(*), SUM(len)
FROM TCP
GROUP BY time/60 as tb, srcIP, destIP, srcPort, destPort

query flow_cnt:
SELECT tb, srcIP, destIP, count(*)
FROM tcp_flows
GROUP BY tb, srcIP, destIP`)
	tf, _ := g.Node("tcp_flows")
	fc, _ := g.Node("flow_cnt")
	rtf, rfc := NodeRequirement(tf), NodeRequirement(fc)
	if !rtf.Set.Equal(MustParseSet("srcIP, destIP, srcPort, destPort")) {
		t.Errorf("tcp_flows requirement = %s", rtf.Set)
	}
	if !rfc.Set.Equal(MustParseSet("srcIP, destIP")) {
		t.Errorf("flow_cnt requirement = %s", rfc.Set)
	}
	// Their reconciliation is {srcIP, destIP}, compatible with both.
	rec := Reconcile(rtf.Set, rfc.Set)
	if !rec.Equal(MustParseSet("srcIP, destIP")) {
		t.Errorf("reconciled = %s", rec)
	}
	if !Compatible(rec, tf) || !Compatible(rec, fc) {
		t.Error("reconciled set must be compatible with both queries")
	}
}

func TestOptimizeComplexSetPicksSrcIP(t *testing.T) {
	g := buildGraph(t, tcpDDL, complexSet)
	res, err := Optimize(g, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Section 3.2: partitioning on (srcIP) satisfies all queries in
	// the sample set and minimizes the max network load.
	if !res.Best.Equal(MustParseSet("srcIP")) {
		t.Fatalf("best = %s, want (srcIP)\n%s", res.Best, res.Summary())
	}
	if res.BestCost >= res.CentralCost {
		t.Errorf("best cost %.0f should beat centralized %.0f", res.BestCost, res.CentralCost)
	}
	// All three queries distributable under the winner.
	for _, name := range []string{"flows", "heavy_flows", "flow_pairs"} {
		n, _ := g.Node(name)
		if !Distributable(res.Best, n) {
			t.Errorf("%s should be distributable under %s", name, res.Best)
		}
	}
	// Under the suboptimal (srcIP, destIP) of Figure 12, only flows is
	// compatible.
	partial := MustParseSet("srcIP, destIP")
	flows, _ := g.Node("flows")
	hf, _ := g.Node("heavy_flows")
	if !Compatible(partial, flows) {
		t.Error("flows should be compatible with (srcIP, destIP)")
	}
	if Compatible(partial, hf) {
		t.Error("heavy_flows must be incompatible with (srcIP, destIP)")
	}
}

func TestOptimizeQuerySetSection62(t *testing.T) {
	// Section 6.2: subnet aggregation (srcIP & 0xFFF0, destIP) plus a
	// jitter self-join on (srcIP, destIP, srcPort, destPort). The
	// optimal is the aggregation's set because the aggregation
	// dominates the network load.
	g := buildGraph(t, tcpDDL, `
query subnet_agg:
SELECT tb, subnet, destIP, COUNT(*), SUM(len)
FROM TCP
GROUP BY time/60 AS tb, srcIP & 0xFFF0 AS subnet, destIP

query jitter:
SELECT S1.time, S1.srcIP, S1.destIP, S2.time - S1.time AS delay
FROM TCP S1, TCP S2
WHERE S1.time = S2.time AND S1.srcIP = S2.srcIP AND S1.destIP = S2.destIP
  AND S1.srcPort = S2.srcPort AND S1.destPort = S2.destPort`)
	agg, _ := g.Node("subnet_agg")
	join, _ := g.Node("jitter")
	if r := NodeRequirement(agg); !r.Set.Equal(MustParseSet("srcIP & 0xFFF0, destIP")) {
		t.Errorf("subnet_agg requirement = %s", r.Set)
	}
	if r := NodeRequirement(join); !r.Set.Equal(MustParseSet("srcIP, destIP, srcPort, destPort")) {
		t.Errorf("jitter requirement = %s", r.Set)
	}
	// The two requirements reconcile: srcIP&0xFFF0 is a function of
	// srcIP, destIP of destIP.
	rec := Reconcile(NodeRequirement(agg).Set, NodeRequirement(join).Set)
	if !rec.Equal(MustParseSet("srcIP & 0xFFF0, destIP")) {
		t.Errorf("reconciled = %s", rec)
	}
	// The join tower: (srcIP&0xFFF0, destIP) is compatible with the
	// join too (coarsening of its keys), so the optimizer should find
	// it and it should satisfy both.
	stats := NewStaticStats()
	// The aggregation dominates: it emits far more distinct groups
	// than the join emits matches.
	stats.SetSelectivity("subnet_agg", 0.3)
	stats.SetSelectivity("jitter", 0.01)
	res, err := Optimize(g, stats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !Compatible(res.Best, agg) {
		t.Errorf("best %s must satisfy the dominant aggregation\n%s", res.Best, res.Summary())
	}
	if !Compatible(res.Best, join) {
		t.Errorf("best %s should also satisfy the join via coarsening", res.Best)
	}
}

func TestConflictingQueriesTieBreakByTotal(t *testing.T) {
	// Two aggregations with disjoint requirements over the same raw
	// stream: whichever query is left unsatisfied centralizes and
	// pulls the full stream, so the max-node objective ties with the
	// centralized baseline either way. The tie breaks on total
	// traffic: satisfying the query whose distributed output union is
	// cheapest adds the least on top of the unavoidable raw feed.
	g := buildGraph(t, tcpDDL, `
query by_src:
SELECT tb, srcIP, COUNT(*) FROM TCP GROUP BY time/60 AS tb, srcIP

query by_dst:
SELECT tb, destIP, COUNT(*) FROM TCP GROUP BY time/60 AS tb, destIP`)
	stats := NewStaticStats()
	stats.SetSelectivity("by_src", 0.001) // tiny output: cheap to union
	stats.SetSelectivity("by_dst", 0.5)   // heavy output
	res, err := Optimize(g, stats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost != res.CentralCost {
		t.Errorf("max objective should tie with centralized: %f vs %f", res.BestCost, res.CentralCost)
	}
	bySrc, _ := g.Node("by_src")
	if !Compatible(res.Best, bySrc) {
		t.Errorf("best = %s should satisfy by_src (cheapest union)\n%s", res.Best, res.Summary())
	}
}

func TestOptimizeNoUsefulPartitioning(t *testing.T) {
	// A single global aggregation (no non-temporal group attributes):
	// nothing to partition on.
	g := buildGraph(t, tcpDDL, `
SELECT tb, COUNT(*) FROM TCP GROUP BY time/60 AS tb`)
	res, err := Optimize(g, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.IsEmpty() {
		t.Errorf("best = %s, want empty (centralize)", res.Best)
	}
	if res.BestCost != res.CentralCost {
		t.Errorf("best cost %f != central %f", res.BestCost, res.CentralCost)
	}
}

func TestCostModelShape(t *testing.T) {
	g := buildGraph(t, tcpDDL, complexSet)
	cm := NewCostModel(g, nil)
	flows, _ := g.Node("flows")
	fp, _ := g.Node("flow_pairs")

	// Centralized: the lowest aggregation receives the whole stream.
	central := cm.PlanCost(nil)
	if central != cm.InputByteRate(flows) {
		t.Errorf("central cost %f != flows input %f", central, cm.InputByteRate(flows))
	}
	// Fully compatible (srcIP): only the final union pays, at the
	// root's output rate.
	full := cm.PlanCost(MustParseSet("srcIP"))
	if full != cm.OutputByteRate(fp) {
		t.Errorf("full cost %f != flow_pairs output %f", full, cm.OutputByteRate(fp))
	}
	// Partially compatible (srcIP, destIP): heavy_flows centralizes,
	// paying flows' output rate.
	partial := cm.PlanCost(MustParseSet("srcIP, destIP"))
	if partial != cm.OutputByteRate(flows) {
		t.Errorf("partial cost %f != flows output %f", partial, cm.OutputByteRate(flows))
	}
	if !(full < partial && partial < central) {
		t.Errorf("cost ordering violated: full=%f partial=%f central=%f", full, partial, central)
	}
	// Explain output mentions each query.
	exp := cm.Explain(MustParseSet("srcIP"))
	for _, name := range []string{"flows", "heavy_flows", "flow_pairs"} {
		if !strings.Contains(exp, name) {
			t.Errorf("Explain missing %s:\n%s", name, exp)
		}
	}
}

func TestCostObjectiveAblation(t *testing.T) {
	// The paper argues for minimizing the *maximum* per-node network
	// load rather than the sum. Construct a set where the objectives
	// disagree: one heavy query and two light ones with a shared
	// requirement that conflicts with the heavy query's.
	g := buildGraph(t, tcpDDL, `
query heavy:
SELECT tb, srcIP, COUNT(*) FROM TCP GROUP BY time/60 AS tb, srcIP

query light1:
SELECT tb, destIP, COUNT(*) FROM TCP GROUP BY time/60 AS tb, destIP

query light2:
SELECT tb, destIP, SUM(len) FROM TCP GROUP BY time/60 AS tb, destIP`)
	stats := NewStaticStats()
	stats.SetSelectivity("heavy", 0.6)
	stats.SetSelectivity("light1", 0.01)
	stats.SetSelectivity("light2", 0.01)
	cm := NewCostModel(g, stats)

	src := MustParseSet("srcIP")  // satisfies heavy only
	dst := MustParseSet("destIP") // satisfies both light queries

	// Max objective: both choices leave one full-stream centralization,
	// so the max ties; the totals differ.
	if cm.PlanCost(src) != cm.PlanCost(dst) {
		t.Fatalf("max objective should tie: %f vs %f", cm.PlanCost(src), cm.PlanCost(dst))
	}
	if cm.TotalCost(src) <= cm.TotalCost(dst) {
		t.Fatalf("sum objective should disagree: src %f vs dst %f",
			cm.TotalCost(src), cm.TotalCost(dst))
	}
	// The search breaks the max tie by total, picking the cheaper sum.
	res, err := Optimize(g, stats, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	light1, _ := g.Node("light1")
	if !Compatible(res.Best, light1) {
		t.Errorf("best %s should satisfy the cheaper-union light queries\n%s", res.Best, res.Summary())
	}
}

func TestSetNormalizeAndSubset(t *testing.T) {
	// Duplicate attributes keep the finer element.
	s := MustParseSet("srcIP & 0xFF00, srcIP & 0xFFF0")
	if len(s) != 1 || s[0].String() != "srcIP & 0xFFF0" {
		t.Errorf("normalize kept %s", s)
	}
	if !SubsetCompatible(MustParseSet("srcIP & 0xFF00"), MustParseSet("srcIP, destIP")) {
		t.Error("coarsened singleton should be subset-compatible")
	}
	if SubsetCompatible(nil, MustParseSet("srcIP")) {
		t.Error("empty set is never subset-compatible")
	}
	if SubsetCompatible(MustParseSet("srcPort"), MustParseSet("srcIP, destIP")) {
		t.Error("foreign attribute must not be subset-compatible")
	}
}

func TestParseSetHandlesParens(t *testing.T) {
	s, err := ParseSet("(time/60)/2, srcIP & 0xFFF0")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 {
		t.Fatalf("parsed %d elements", len(s))
	}
	if _, err := ParseSet("srcIP,,destIP"); err == nil {
		t.Error("empty element should fail")
	}
}

func TestResultSummary(t *testing.T) {
	g := buildGraph(t, tcpDDL, complexSet)
	res, err := Optimize(g, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	for _, want := range []string{"recommended:", "flows", "heavy_flows", "flow_pairs", "candidate"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}
