package exec

import (
	"math"

	"qap/internal/sqlval"
)

// hllRegisters is the register count (2^hllBits) of the HyperLogLog
// sketch behind APPROX_COUNT_DISTINCT. 256 registers give ~6.5%
// standard error, plenty for load-shedding decisions while keeping
// partial tuples small on the wire.
const (
	hllBits      = 8
	hllRegisters = 1 << hllBits
)

// hllAlpha is the bias-correction constant for m = 256.
var hllAlpha = 0.7213 / (1 + 1.079/float64(hllRegisters))

// hllSketch is a fixed-size HyperLogLog register array.
type hllSketch [hllRegisters]byte

// add folds one hashed value into the sketch.
func (s *hllSketch) add(h uint64) {
	idx := h >> (64 - hllBits)
	rest := h<<hllBits | 1<<(hllBits-1) // guarantee a set bit
	rank := byte(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > s[idx] {
		s[idx] = rank
	}
}

// merge takes the register-wise maximum.
func (s *hllSketch) merge(o *hllSketch) {
	for i := range s {
		if o[i] > s[i] {
			s[i] = o[i]
		}
	}
}

// estimate computes the HyperLogLog cardinality estimate with the
// standard small-range correction.
func (s *hllSketch) estimate() uint64 {
	sum := 0.0
	zeros := 0
	for _, r := range s {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	m := float64(hllRegisters)
	e := hllAlpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		// Linear counting for small cardinalities.
		e = m * math.Log(m/float64(zeros))
	}
	return uint64(e + 0.5)
}

// encode serializes the registers for shipping as a partial value.
func (s *hllSketch) encode() string { return string(s[:]) }

// decodeHLL rebuilds a sketch from its wire form; short or foreign
// strings yield an empty sketch.
func decodeHLL(enc string) hllSketch {
	var s hllSketch
	if len(enc) == hllRegisters {
		copy(s[:], enc)
	}
	return s
}

// hllAccum is the full-aggregation accumulator: estimate directly.
type hllAccum struct{ s hllSketch }

func (a *hllAccum) Add(v sqlval.Value) {
	if v.IsNull() {
		return
	}
	a.s.add(v.Hash())
}

func (a *hllAccum) Result() sqlval.Value { return sqlval.Uint(a.s.estimate()) }

// hllSketchAccum is the sub-aggregate: it emits the encoded registers
// so the super-aggregate can merge partial sketches losslessly.
type hllSketchAccum struct{ s hllSketch }

func (a *hllSketchAccum) Add(v sqlval.Value) {
	if v.IsNull() {
		return
	}
	a.s.add(v.Hash())
}

func (a *hllSketchAccum) Result() sqlval.Value { return sqlval.Str(a.s.encode()) }

// hllMergeAccum is the super-aggregate: register-wise max over partial
// sketches, then estimate.
type hllMergeAccum struct{ s hllSketch }

func (a *hllMergeAccum) Add(v sqlval.Value) {
	enc, ok := v.AsString()
	if !ok {
		return
	}
	dec := decodeHLL(enc)
	a.s.merge(&dec)
}

func (a *hllMergeAccum) Result() sqlval.Value { return sqlval.Uint(a.s.estimate()) }

// varAccum accumulates the moment triple (n, sum, sumsq) and reports
// the population variance (or its square root for STDDEV).
type varAccum struct {
	n          float64
	sum, sumsq float64
	sqrt       bool
}

func (a *varAccum) Add(v sqlval.Value) {
	f, ok := v.AsFloat()
	if !ok {
		return
	}
	a.n++
	a.sum += f
	a.sumsq += f * f
}

func (a *varAccum) Result() sqlval.Value {
	if a.n == 0 {
		return sqlval.Null
	}
	mean := a.sum / a.n
	variance := a.sumsq/a.n - mean*mean
	if variance < 0 {
		variance = 0 // guard float cancellation
	}
	if a.sqrt {
		return sqlval.Float(math.Sqrt(variance))
	}
	return sqlval.Float(variance)
}
