package exec

import (
	"fmt"
	"math"
	"testing"

	"qap/internal/gsql"
	"qap/internal/sqlval"
)

// sameValue compares two values exactly — kind and payload bits —
// which is stricter than Equal (NaN payloads, kind distinctions).
func sameValue(a, b sqlval.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case sqlval.KindNull:
		return true
	case sqlval.KindString:
		as, _ := a.AsString()
		bs, _ := b.AsString()
		return as == bs
	case sqlval.KindFloat:
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return math.Float64bits(af) == math.Float64bits(bf)
	default:
		au, _ := a.AsUint()
		bu, _ := b.AsUint()
		return au == bu
	}
}

func TestColBatchPivotRoundTrip(t *testing.T) {
	rows := Batch{
		{sqlval.Uint(1), sqlval.Int(-7), sqlval.Float(2.5), sqlval.Bool(true), sqlval.Str("a"), sqlval.Null},
		{sqlval.Uint(math.MaxUint64), sqlval.Int(9), sqlval.Float(math.NaN()), sqlval.Bool(false), sqlval.Str(""), sqlval.Null},
		{sqlval.Uint(0), sqlval.Null, sqlval.Null, sqlval.Null, sqlval.Null, sqlval.Null},
	}
	var cb ColBatch
	if !cb.SetFromRows(rows) {
		t.Fatal("SetFromRows rejected representable rows")
	}
	if cb.Len != len(rows) {
		t.Fatalf("Len = %d, want %d", cb.Len, len(rows))
	}
	back := cb.AppendRows(nil)
	if len(back) != len(rows) {
		t.Fatalf("pivoted %d rows, want %d", len(back), len(rows))
	}
	for r := range rows {
		for c := range rows[r] {
			if !sameValue(rows[r][c], back[r][c]) {
				t.Errorf("row %d col %d: %v != %v", r, c, rows[r][c], back[r][c])
			}
		}
		if got, want := cb.RowWireSize(r), rows[r].WireSize(); got != want {
			t.Errorf("row %d wire size %d, want %d", r, got, want)
		}
	}
}

func TestColBatchRejectsMixedKinds(t *testing.T) {
	var cb ColBatch
	if cb.SetFromRows(Batch{{sqlval.Uint(1)}, {sqlval.Str("x")}}) {
		t.Error("mixed uint/string column accepted")
	}
	if cb.SetFromRows(Batch{{sqlval.Uint(1)}, {sqlval.Uint(2), sqlval.Uint(3)}}) {
		t.Error("ragged rows accepted")
	}
}

func TestColBatchAllUint(t *testing.T) {
	var cb ColBatch
	if !cb.SetFromRows(Batch{{sqlval.Uint(1)}, {sqlval.Uint(2)}}) || !cb.AllUint() {
		t.Error("all-uint batch not detected")
	}
	if !cb.SetFromRows(Batch{{sqlval.Uint(1)}, {sqlval.Null}}) {
		t.Fatal("nullable uint column rejected")
	}
	if cb.AllUint() {
		t.Error("column with NULLs reported AllUint")
	}
}

func TestColBatchSlice(t *testing.T) {
	var cb ColBatch
	rows := Batch{}
	for i := 0; i < 10; i++ {
		rows = append(rows, Tuple{sqlval.Uint(uint64(i)), sqlval.Uint(uint64(i * i))})
	}
	if !cb.SetFromRows(rows) {
		t.Fatal("SetFromRows failed")
	}
	var view ColBatch
	cb.Slice(3, 7, &view)
	if view.Len != 4 {
		t.Fatalf("view.Len = %d", view.Len)
	}
	for i := 0; i < 4; i++ {
		if !sameValue(view.Cols[0].Value(i), sqlval.Uint(uint64(3+i))) {
			t.Errorf("view row %d = %v", i, view.Cols[0].Value(i))
		}
	}
}

// colTestRows builds an all-uint batch over (time, srcIP, destIP,
// flags, len) with enough key collisions to exercise grouping.
func colTestRows(n int) Batch {
	b := make(Batch, 0, n)
	for i := 0; i < n; i++ {
		b = append(b, Tuple{
			sqlval.Uint(uint64(i / 16)),        // time
			sqlval.Uint(uint64(i % 7)),         // srcIP
			sqlval.Uint(uint64(i % 3)),         // destIP
			sqlval.Uint(uint64(i) & 0x3f),      // flags
			sqlval.Uint(uint64(40 + (i % 11))), // len
		})
	}
	return b
}

var colTestResolver = ColsResolver("", []string{"time", "srcIP", "destIP", "flags", "len"})

func mustCompileCol(t *testing.T, src string, r Resolver, params Params) ColExpr {
	t.Helper()
	ce, err := CompileCol(gsql.MustParseExpr(src), r, params)
	if err != nil {
		t.Fatalf("CompileCol(%q): %v", src, err)
	}
	return ce
}

// TestCompileColKernelMatchesRow drives every whitelisted kernel shape
// over an all-uint batch and checks the vector result against the row
// closure, value for value and kind for kind.
func TestCompileColKernelMatchesRow(t *testing.T) {
	rows := colTestRows(97)
	var cb ColBatch
	if !cb.SetFromRows(rows) {
		t.Fatal("SetFromRows failed")
	}
	params := Params{"P": sqlval.Uint(0x26)}
	uintExprs := []string{
		"srcIP",
		"time / 60",
		"time % 7",
		"len * 3 + 1",
		"flags & 0x26",
		"flags | 16",
		"flags ^ srcIP",
		"srcIP << 2",
		"len >> 1",
		"srcIP << len",
		"~flags",
		"ABS(len)",
		"#P#",
		"2 + 3 * 4",
		"100 / 10 % 7",
	}
	for _, src := range uintExprs {
		ce := mustCompileCol(t, src, colTestResolver, params)
		if ce.U == nil {
			t.Errorf("%q: no uint kernel", src)
			continue
		}
		v := ce.U(&cb)
		for i, row := range rows {
			want := ce.Row(row)
			if !sameValue(want, sqlval.Uint(v[i])) {
				t.Fatalf("%q row %d: kernel %d, row eval %v", src, i, v[i], want)
			}
		}
	}
	truthExprs := []string{
		"srcIP = destIP",
		"srcIP != destIP",
		"srcIP < destIP",
		"srcIP <= destIP",
		"len > 45",
		"len >= 45",
		"flags & 0x26 = 0x26",
		"srcIP = 1 AND len > 44",
		"srcIP = 1 OR destIP = 2",
		"NOT (srcIP = 1)",
		"NOT flags",
		"flags", // truthiness of a uint expression
		"srcIP = 1 AND (destIP = 2 OR len < 43)",
	}
	for _, src := range truthExprs {
		ce := mustCompileCol(t, src, colTestResolver, params)
		if ce.Truth == nil {
			t.Errorf("%q: no truth kernel", src)
			continue
		}
		v := ce.Truth(&cb)
		for i, row := range rows {
			want := ce.Row(row).AsBool()
			if (v[i] != 0) != want {
				t.Fatalf("%q row %d: kernel %d, row eval %v", src, i, v[i], want)
			}
		}
	}
}

// TestCompileColUnsupportedFallsBack pins the shapes that must NOT get
// kernels: their value kind can leave uint (or NULL) at runtime.
func TestCompileColUnsupportedFallsBack(t *testing.T) {
	for _, src := range []string{
		"srcIP - destIP", // underflow yields Int
		"-srcIP",         // Neg yields Int
		"len / srcIP",    // runtime zero divisor yields NULL
		"len % srcIP",
		"len / 0", // constant zero divisor
		"1.5 * len",
		"SQRT(len)",
		"'x'",
	} {
		ce := mustCompileCol(t, src, colTestResolver, nil)
		if ce.U != nil {
			t.Errorf("%q: unexpectedly has a uint kernel", src)
		}
	}
	// Param of non-uint kind must not fold as a uint constant.
	ce := mustCompileCol(t, "#F#", colTestResolver, Params{"F": sqlval.Float(1.5)})
	if ce.U != nil {
		t.Error("float param folded into uint kernel")
	}
}

// runAggBoth drives the same input through a row-path and a
// columnar-path aggregate, interleaving watermarks, and returns the
// two collected outputs.
func runAggBoth(t *testing.T, rows Batch, batch int) (scalar, columnar Batch, lateS, lateC int64) {
	t.Helper()
	build := func(out Consumer, columnar bool) *Aggregate {
		cfg := AggregateConfig{
			PreFilter: MustCompile(gsql.MustParseExpr("len > 40"), colTestResolver, nil),
			GroupBy: []EvalFunc{
				MustCompile(gsql.MustParseExpr("time"), colTestResolver, nil),
				MustCompile(gsql.MustParseExpr("srcIP"), colTestResolver, nil),
				MustCompile(gsql.MustParseExpr("destIP"), colTestResolver, nil),
			},
			EpochIdx:  0,
			EpochOfWM: func(wm uint64) sqlval.Value { return sqlval.Uint(wm / 16) },
			Aggs: []AggColumn{
				{Factory: mustFactory(t, "COUNT")},
				{Factory: mustFactory(t, "OR_AGGR"), Arg: MustCompile(gsql.MustParseExpr("flags"), colTestResolver, nil)},
				{Factory: mustFactory(t, "SUM"), Arg: MustCompile(gsql.MustParseExpr("len"), colTestResolver, nil)},
			},
			Having: MustCompile(gsql.MustParseExpr("cnt >= 1"), ColsResolver("", []string{"tb", "s", "d", "cnt", "orf", "bytes"}), nil),
			Out:    out,
		}
		if columnar {
			cfg.ColPreFilter = colPtr(mustCompileCol(t, "len > 40", colTestResolver, nil))
			cfg.ColGroupBy = []ColExpr{
				mustCompileCol(t, "time", colTestResolver, nil),
				mustCompileCol(t, "srcIP", colTestResolver, nil),
				mustCompileCol(t, "destIP", colTestResolver, nil),
			}
			cfg.ColArgs = []*ColExpr{
				nil,
				colPtr(mustCompileCol(t, "flags", colTestResolver, nil)),
				colPtr(mustCompileCol(t, "len", colTestResolver, nil)),
			}
		}
		return NewAggregate(cfg)
	}
	var outS, outC Collector
	aggS := build(&outS, false)
	aggC := build(&outC, true)
	var cb ColBatch
	for off := 0; off < len(rows); off += batch {
		end := off + batch
		if end > len(rows) {
			end = len(rows)
		}
		chunk := rows[off:end]
		aggS.PushBatch(chunk)
		if !cb.SetFromRows(chunk) {
			t.Fatal("SetFromRows failed")
		}
		aggC.PushCols(&cb)
		wm := uint64(off)
		aggS.Advance(wm)
		aggC.Advance(wm)
	}
	aggS.Flush()
	aggC.Flush()
	return outS.Rows, outC.Rows, aggS.Late, aggC.Late
}

func colPtr(ce ColExpr) *ColExpr { return &ce }

func mustFactory(t *testing.T, name string) AccumFactory {
	t.Helper()
	f, err := NewAccumFactory(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestAggregatePushColsMatchesPushBatch(t *testing.T) {
	rows := colTestRows(500)
	// Shuffle some rows backwards in time so the late path fires.
	rows[490], rows[10] = rows[10], rows[490]
	rows[491], rows[11] = rows[11], rows[491]
	for _, batch := range []int{1, 7, 64, 500} {
		scalar, columnar, lateS, lateC := runAggBoth(t, rows, batch)
		if lateS != lateC {
			t.Fatalf("batch %d: Late %d (scalar) != %d (columnar)", batch, lateS, lateC)
		}
		diffBatches(t, fmt.Sprintf("agg batch %d", batch), scalar, columnar)
	}
}

func diffBatches(t *testing.T, label string, a, b Batch) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d rows vs %d rows", label, len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("%s row %d: width %d vs %d", label, i, len(a[i]), len(b[i]))
		}
		for c := range a[i] {
			if !sameValue(a[i][c], b[i][c]) {
				t.Fatalf("%s row %d col %d: %v vs %v", label, i, c, a[i][c], b[i][c])
			}
		}
	}
}

// TestAggregateColumnarScalarInterleave drives the SAME aggregate with
// alternating PushBatch and PushCols and checks it against a pure
// row-path oracle: the slot cache must stay coherent with groups the
// row path creates and with epoch drains in between.
func TestAggregateColumnarScalarInterleave(t *testing.T) {
	rows := colTestRows(512)
	build := func(out Consumer) *Aggregate {
		return NewAggregate(AggregateConfig{
			GroupBy: []EvalFunc{
				MustCompile(gsql.MustParseExpr("time"), colTestResolver, nil),
				MustCompile(gsql.MustParseExpr("srcIP"), colTestResolver, nil),
			},
			ColGroupBy: []ColExpr{
				mustCompileCol(t, "time", colTestResolver, nil),
				mustCompileCol(t, "srcIP", colTestResolver, nil),
			},
			EpochIdx:  0,
			EpochOfWM: func(wm uint64) sqlval.Value { return sqlval.Uint(wm / 16) },
			Aggs:      []AggColumn{{Factory: mustFactory(t, "COUNT")}},
			Out:       out,
		})
	}
	var outMix, outRow Collector
	mix := build(&outMix)
	oracle := build(&outRow)
	var cb ColBatch
	for off := 0; off < len(rows); off += 32 {
		chunk := rows[off : off+32]
		if (off/32)%2 == 0 {
			if !cb.SetFromRows(chunk) {
				t.Fatal("SetFromRows failed")
			}
			mix.PushCols(&cb)
		} else {
			mix.PushBatch(chunk)
		}
		oracle.PushBatch(chunk)
		mix.Advance(uint64(off))
		oracle.Advance(uint64(off))
	}
	mix.Flush()
	oracle.Flush()
	diffBatches(t, "interleave", outRow.Rows, outMix.Rows)
}

func TestFilterProjectPushColsMatchesPushBatch(t *testing.T) {
	rows := colTestRows(300)
	cases := []struct {
		name   string
		filter string
		projs  []string
	}{
		{"passthrough", "", nil},
		{"filter-only", "flags & 0x20 = 0x20 AND len > 42", nil},
		{"filter-none-pass", "srcIP > 100", nil},
		{"filter-all-pass", "len > 0", nil},
		{"projs-only", "", []string{"time / 60", "srcIP", "len * 2"}},
		{"filter-and-projs", "destIP = 1", []string{"srcIP", "flags | 1"}},
		{"unkernelable-filter", "srcIP - destIP", nil}, // falls back to pivot
	}
	for _, tc := range cases {
		var outS, outC Collector
		mk := func(out Consumer, columnar bool) *FilterProject {
			fp := &FilterProject{Out: out}
			if tc.filter != "" {
				fp.Filter = MustCompile(gsql.MustParseExpr(tc.filter), colTestResolver, nil)
				if columnar {
					fp.ColFilter = colPtr(mustCompileCol(t, tc.filter, colTestResolver, nil))
				}
			}
			for _, p := range tc.projs {
				fp.Projs = append(fp.Projs, MustCompile(gsql.MustParseExpr(p), colTestResolver, nil))
				if columnar {
					fp.ColProjs = append(fp.ColProjs, mustCompileCol(t, p, colTestResolver, nil))
				}
			}
			return fp
		}
		fpS := mk(&outS, false)
		fpC := mk(&outC, true)
		var cb ColBatch
		for off := 0; off < len(rows); off += 64 {
			end := off + 64
			if end > len(rows) {
				end = len(rows)
			}
			fpS.PushBatch(rows[off:end])
			if !cb.SetFromRows(rows[off:end]) {
				t.Fatal("SetFromRows failed")
			}
			fpC.PushCols(&cb)
		}
		diffBatches(t, tc.name, outS.Rows, outC.Rows)
	}
}

func TestJoinPushColsMatchesPushBatch(t *testing.T) {
	r := ColsResolver("", []string{"time", "srcIP", "destIP", "flags", "len"})
	jr := ColsResolver("", []string{"lt", "ls", "ld", "lf", "ll", "rt", "rs", "rd", "rf", "rl"})
	left := colTestRows(200)
	right := colTestRows(200)
	mk := func(out Consumer, columnar bool) *Join {
		keys := func() []EvalFunc {
			return []EvalFunc{
				MustCompile(gsql.MustParseExpr("time"), r, nil),
				MustCompile(gsql.MustParseExpr("srcIP"), r, nil),
			}
		}
		colKeys := func() []ColExpr {
			return []ColExpr{
				mustCompileCol(t, "time", r, nil),
				mustCompileCol(t, "srcIP", r, nil),
			}
		}
		cfg := JoinConfig{
			Left:     JoinSideConfig{Keys: keys(), Width: 5, TemporalIdx: 0},
			Right:    JoinSideConfig{Keys: keys(), Width: 5, TemporalIdx: 0},
			Residual: MustCompile(gsql.MustParseExpr("ll <= rl"), jr, nil),
			Projs: []EvalFunc{
				MustCompile(gsql.MustParseExpr("lt"), jr, nil),
				MustCompile(gsql.MustParseExpr("ls"), jr, nil),
				MustCompile(gsql.MustParseExpr("ll + rl"), jr, nil),
			},
			Out: out,
		}
		if columnar {
			cfg.Left.ColKeys = colKeys()
			cfg.Right.ColKeys = colKeys()
		}
		return NewJoin(cfg)
	}
	var outS, outC Collector
	jS := mk(&outS, false)
	jC := mk(&outC, true)
	var cbL, cbR ColBatch
	for off := 0; off < len(left); off += 50 {
		jS.LeftIn().(*joinPort).PushBatch(left[off : off+50])
		jS.RightIn().(*joinPort).PushBatch(right[off : off+50])
		if !cbL.SetFromRows(left[off:off+50]) || !cbR.SetFromRows(right[off:off+50]) {
			t.Fatal("SetFromRows failed")
		}
		jC.LeftIn().(*joinPort).PushCols(&cbL)
		jC.RightIn().(*joinPort).PushCols(&cbR)
	}
	jS.LeftIn().Flush()
	jS.RightIn().Flush()
	jC.LeftIn().Flush()
	jC.RightIn().Flush()
	diffBatches(t, "join", outS.Rows, outC.Rows)
}

// rowOnlyConsumer deliberately implements only Consumer, to exercise
// the PushColsAll pivot fallback.
type rowOnlyConsumer struct{ rows Batch }

func (c *rowOnlyConsumer) Push(t Tuple)   { c.rows = append(c.rows, t) }
func (c *rowOnlyConsumer) Advance(uint64) {}
func (c *rowOnlyConsumer) Flush()         {}

// TestPushColsAllPivots checks the generic fallback delivers pivoted
// rows to a plain consumer and drops empty batches.
func TestPushColsAllPivots(t *testing.T) {
	var out rowOnlyConsumer
	var cb ColBatch
	if !cb.SetFromRows(colTestRows(10)) {
		t.Fatal("SetFromRows failed")
	}
	PushColsAll(&out, &cb)
	diffBatches(t, "pivot fallback", colTestRows(10), out.rows)
	cb.Reset()
	PushColsAll(&out, &cb)
	if len(out.rows) != 10 {
		t.Error("empty batch was not dropped")
	}
}
