package obs

import (
	"encoding/json"
	"fmt"
)

// Versioned is implemented by every committed JSON report artifact
// (RunReport, BenchReport, ExecBenchReport, DriftBenchReport). All
// four share the single package-wide SchemaVersion: bumping it is one
// edit, and DecodeStrict makes every decoder assert it, so a stale
// committed artifact fails fast instead of being half-read.
type Versioned interface {
	// Version returns the schema_version the artifact was encoded with.
	Version() int
}

// Version implements Versioned.
func (r *RunReport) Version() int { return r.SchemaVersion }

// Version implements Versioned.
func (r *BenchReport) Version() int { return r.SchemaVersion }

// Version implements Versioned.
func (r *ExecBenchReport) Version() int { return r.SchemaVersion }

// Version implements Versioned.
func (r *DriftBenchReport) Version() int { return r.SchemaVersion }

// CheckSchemaVersion asserts that a decoded artifact's version matches
// this build's SchemaVersion. kind names the artifact in the error.
func CheckSchemaVersion(kind string, got int) error {
	if got != SchemaVersion {
		return fmt.Errorf("obs: %s has schema_version %d but this build reads %d; regenerate the artifact (or bump obs.SchemaVersion with a migration)",
			kind, got, SchemaVersion)
	}
	return nil
}

// DecodeStrict unmarshals a report artifact and asserts its schema
// version, the standard way to read a committed BENCH_*.json or run
// report back in.
func DecodeStrict(data []byte, v Versioned) error {
	if err := json.Unmarshal(data, v); err != nil {
		return err
	}
	return CheckSchemaVersion(fmt.Sprintf("%T", v), v.Version())
}
