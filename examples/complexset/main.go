// Complex query set (paper Sections 3.2 and 6.3): a three-query DAG —
// flows, heavy_flows over it, and the flow_pairs self-join correlating
// heavy flows across consecutive epochs. The example walks the whole
// pipeline: per-node requirements, the reconciliation that picks
// (srcIP), the optimized physical plan, and a comparison of all four
// of the paper's configurations on one trace.
package main

import (
	"fmt"
	"log"

	"qap"
)

func main() {
	sys, err := qap.Load(qap.TCPSchemaDDL, qap.ComplexQuerySet)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("per-query partitioning requirements (paper Section 3.2):")
	reqs := sys.Requirements()
	for _, name := range []string{"flows", "heavy_flows", "flow_pairs"} {
		fmt.Printf("  %-12s %s\n", name, reqs[name].Set)
	}
	analysis, err := sys.Analyze(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreconciled optimum: %s\n", analysis.Best)

	// The physical plan under the optimum: the whole DAG — both
	// aggregations and the join — runs once per partition.
	dep, err := sys.Deploy(qap.DeployConfig{Hosts: 2, PartitionsPerHost: 2, Partitioning: analysis.Best})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndistributed plan under the optimum (2 hosts x 2 partitions):")
	fmt.Print(dep.PlanString())

	cfg := qap.DefaultTraceConfig()
	cfg.DurationSec = 240
	trace := qap.GenerateTrace(cfg)

	fmt.Println("\nthe paper's four configurations on one trace (4 hosts):")
	type config struct {
		name  string
		ps    qap.Set
		scope qap.Scope
	}
	for _, c := range []config{
		{"Naive (round robin)", nil, qap.ScopePartition},
		{"Optimized (host partials)", nil, qap.ScopeHost},
		{"Partitioned (srcIP,destIP)", qap.MustParseSet("srcIP, destIP"), qap.ScopeHost},
		{"Partitioned (srcIP)", qap.MustParseSet("srcIP"), qap.ScopeHost},
	} {
		dep, err := sys.Deploy(qap.DeployConfig{
			Hosts:        4,
			Partitioning: c.ps,
			PartialScope: c.scope,
			Costs:        qap.CostConfig{CapacityPerSec: float64(cfg.PacketsPerSec) * 3},
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := dep.Run("TCP", trace.Packets)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s aggregator cpu %5.1f%%  net %6.0f tup/s  flow_pairs rows %d\n",
			c.name, res.Metrics.CPULoad(0), res.Metrics.NetLoad(0), len(res.Outputs["flow_pairs"]))
	}
}
