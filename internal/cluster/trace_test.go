package cluster

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"qap/internal/core"
	"qap/internal/netgen"
	"qap/internal/obs/trace"
	"qap/internal/optimizer"
)

// runTraced runs the complex DAG with causal tracing on.
func runTraced(t testing.TB, streams map[string][]netgen.Packet, workers, batch, winSec int, tc *trace.Config) *Result {
	t.Helper()
	g := buildGraph(t, complexSet)
	p, err := optimizer.Build(g, core.MustParseSet("srcIP"), optimizer.Options{
		Hosts: 4, PartitionsPerHost: 2, PartialAgg: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, RunConfig{
		Costs: DefaultCosts(), Params: testParams,
		Workers: workers, BatchSize: batch, LoadWindowSec: winSec,
		Trace: tc,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunStreams(streams)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTracingOffIsFree: enabling tracing must never perturb the run —
// outputs, node rows, and metrics are byte-identical with and without
// a trace config, and an untraced run carries no trace.
func TestTracingOffIsFree(t *testing.T) {
	tr := driftTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	plain := runMonitored(t, streams, 1, 1, 10)
	if plain.Trace != nil {
		t.Fatal("untraced run grew a trace")
	}
	traced := runTraced(t, streams, 1, 1, 10, &trace.Config{})
	if traced.Trace == nil {
		t.Fatal("traced run has no trace")
	}
	if !reflect.DeepEqual(plain.Outputs, traced.Outputs) ||
		!reflect.DeepEqual(plain.NodeRows, traced.NodeRows) ||
		!reflect.DeepEqual(*plain.Metrics, *traced.Metrics) {
		t.Error("enabling tracing perturbed the run")
	}
	if !reflect.DeepEqual(plain.LoadSeries, traced.LoadSeries) {
		t.Error("enabling tracing perturbed the load series")
	}
}

// TestTraceCanonicalBytesAcrossCells: the canonical JSONL must be
// byte-identical across every workers×batch cell (both engines, scalar
// and batched delivery), while the full JSONL still records the cell's
// shape in its timing trailer.
func TestTraceCanonicalBytesAcrossCells(t *testing.T) {
	tr := driftTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	type cell struct{ workers, batch int }
	cells := []cell{{1, 1}, {1, 256}, {4, 1}, {4, 256}}
	var want []byte
	for _, c := range cells {
		res := runTraced(t, streams, c.workers, c.batch, 10, &trace.Config{})
		canon, err := res.Trace.CanonicalJSONL()
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = canon
			if len(want) == 0 {
				t.Fatal("canonical trace is empty")
			}
			continue
		}
		if !bytes.Equal(canon, want) {
			t.Errorf("workers=%d batch=%d: canonical JSONL differs from workers=1 batch=1 (%d vs %d bytes)",
				c.workers, c.batch, len(canon), len(want))
		}
		full, err := res.Trace.JSONL()
		if err != nil {
			t.Fatal(err)
		}
		wantTail := fmt.Sprintf(`"workers":%d,"batch_size":%d`, c.workers, c.batch)
		if c.workers == 1 {
			// Sequential runs don't report a worker count.
			wantTail = fmt.Sprintf(`"batch_size":%d`, c.batch)
		}
		if !bytes.Contains(full, []byte(wantTail)) {
			t.Errorf("workers=%d batch=%d: timing trailer missing %s", c.workers, c.batch, wantTail)
		}
	}
}

// TestTraceRebuildsLoadSeries: per-host load reconstructed from the
// trace's host_window events must equal the engine's own monitoring
// output exactly — integer counters bit-equal, CPUUnits quarantined.
func TestTraceRebuildsLoadSeries(t *testing.T) {
	tr := driftTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	for _, c := range []struct{ workers, batch int }{{1, 1}, {4, 256}} {
		res := runTraced(t, streams, c.workers, c.batch, 10, &trace.Config{})
		got := res.Trace.HostLoadSeries("")
		want := trace.StripCPUUnits(res.LoadSeries)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d batch=%d: trace-rebuilt load series differs:\n got %+v\nwant %+v",
				c.workers, c.batch, got, want)
		}
	}
}

// TestTraceRoundEvents: driver rounds are dense from 0 with
// nondecreasing watermarks, the packet counts sum to the stream size,
// and the flush record closes the sequence.
func TestTraceRoundEvents(t *testing.T) {
	tr := driftTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	res := runTraced(t, streams, 1, 1, 0, &trace.Config{})
	next := 0
	var pk int64
	lastWM := uint64(0)
	flushes := 0
	for _, e := range res.Trace.Records {
		switch e.Kind {
		case trace.KindRound:
			if e.Round != next {
				t.Fatalf("round %d out of order, want %d", e.Round, next)
			}
			if e.WM < lastWM {
				t.Fatalf("round %d watermark %d regressed below %d", e.Round, e.WM, lastWM)
			}
			next++
			lastWM = e.WM
			pk += e.Rows
		case trace.KindFlush:
			flushes++
			if e.Round != next {
				t.Fatalf("flush round %d, want %d", e.Round, next)
			}
		}
	}
	if flushes != 1 {
		t.Fatalf("saw %d flush records, want 1", flushes)
	}
	if pk != int64(len(tr.Packets)) {
		t.Fatalf("round packet counts sum to %d, want %d", pk, len(tr.Packets))
	}
}

// TestTraceRingMode: a bounded flight recorder drops oldest events per
// shard but still yields a well-formed, deterministic trace.
func TestTraceRingMode(t *testing.T) {
	tr := driftTrace(t)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	full := runTraced(t, streams, 1, 1, 10, &trace.Config{})
	ring := runTraced(t, streams, 1, 1, 10, &trace.Config{Mode: trace.ModeRing, RingSize: 4})
	if len(ring.Trace.Records) >= len(full.Trace.Records) {
		t.Fatalf("ring capture (%d records) not smaller than full capture (%d)",
			len(ring.Trace.Records), len(full.Trace.Records))
	}
	ring2 := runTraced(t, streams, 4, 256, 10, &trace.Config{Mode: trace.ModeRing, RingSize: 4})
	a, err := ring.Trace.CanonicalJSONL()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ring2.Trace.CanonicalJSONL()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("ring captures differ across engines: same events must be dropped on every run")
	}
}

// BenchmarkTraceOverhead quantifies the tracing tax on the monitored
// run (the acceptance gate wants tracing provably cheap).
func BenchmarkTraceOverhead(b *testing.B) {
	tr := driftTrace(b)
	streams := map[string][]netgen.Packet{"TCP": tr.Packets}
	b.Run("off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runMonitored(b, streams, 1, 256, 10)
		}
	})
	b.Run("on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runTraced(b, streams, 1, 256, 10, &trace.Config{})
		}
	})
}
