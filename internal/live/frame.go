// Package live is the wire layer of the live TCP cluster backend: a
// length-prefixed frame format, the splitter/node protocol messages
// (paper Section 3.3: a splitter ships hash-routed tuple rounds to
// per-host nodes, which ship their island-crossing deliveries back),
// reliable resumable sessions with credit-based backpressure, and a
// deterministic fault-injection net.Conn wrapper for the recovery
// tests.
//
// The package knows nothing about plans or operators: it moves framed
// messages whose tuple payloads use the exec batch wire codec. The
// cluster package's live engine supplies an Executor that turns feed
// messages into link messages; cmd/qap-node serves the same Executor
// from a separate OS process.
//
// Reliability model: each direction of a connection carries a
// monotonically sequenced stream of frames with cumulative
// acknowledgements. A lost or reordered frame surfaces as a sequence
// gap or a decode error, either of which kills the connection; the
// splitter redials, the handshake exchanges each side's
// applied-through sequence, and both sides retransmit their unacked
// tails. Duplicated frames (a retransmit racing an ack, or an injected
// fault) are detected by sequence and skipped, so every feed is
// executed exactly once and every link delivered exactly once — which
// is what makes recovery byte-identical to an undisturbed run.
package live

import (
	"fmt"
	"io"
)

// Frame types.
const (
	frameHello   = byte(1) // splitter -> node: session open/resume
	frameWelcome = byte(2) // node -> splitter: resume point reply
	frameFeed    = byte(3) // splitter -> node: a batch of rounds
	frameLink    = byte(4) // node -> splitter: captured island crossings
	frameFeedAck = byte(5) // node -> splitter: feed executed (credit release)
	frameLinkAck = byte(6) // splitter -> node: link applied
	frameResult  = byte(7) // node -> splitter: final island shards (remote mode)
)

// DefaultMaxFrame bounds one frame's payload; larger frames are a
// protocol error. Feeds are paced by rounds (a round is a handful of
// packets at realistic trace rates), so real frames sit far below it.
const DefaultMaxFrame = 16 << 20

// frameHeaderLen is the 4-byte big-endian payload length plus the type
// byte.
const frameHeaderLen = 5

// appendFrame appends a complete frame (header, type, payload) to dst.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	n := len(payload) + 1
	dst = append(dst, byte(n>>24), byte(n>>16), byte(n>>8), byte(n), typ)
	return append(dst, payload...)
}

// writeFrame sends one frame in a single Write call, so the fault
// wrapper's per-Write drop/duplicate faults operate on whole frames
// and a surviving stream always re-synchronizes at a frame boundary.
func writeFrame(w io.Writer, scratch []byte, typ byte, payload []byte) ([]byte, error) {
	buf := appendFrame(scratch[:0], typ, payload)
	_, err := w.Write(buf)
	return buf, err
}

// readFrame reads one frame. The returned payload aliases buf (grown
// as needed); it is valid until the next call.
func readFrame(r io.Reader, maxFrame int, buf []byte) (typ byte, payload, newBuf []byte, err error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := int(hdr[0])<<24 | int(hdr[1])<<16 | int(hdr[2])<<8 | int(hdr[3])
	if n < 1 {
		return 0, nil, buf, fmt.Errorf("live: frame with %d-byte body", n)
	}
	if n-1 > maxFrame {
		return 0, nil, buf, fmt.Errorf("live: %d-byte frame exceeds the %d-byte limit", n-1, maxFrame)
	}
	if cap(buf) < n-1 {
		buf = make([]byte, n-1)
	}
	buf = buf[:n-1]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, fmt.Errorf("live: truncated frame body: %w", err)
	}
	return hdr[4], buf, buf, nil
}
