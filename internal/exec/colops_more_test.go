package exec

import (
	"testing"

	"qap/internal/gsql"
	"qap/internal/sqlval"
)

// colAggRows builds n rows whose (time, srcIP) pairs are all distinct,
// to drive group-table growth.
func colAggRows(n int) Batch {
	b := make(Batch, 0, n)
	for i := 0; i < n; i++ {
		b = append(b, Tuple{
			u(0),                // time: one epoch
			u(uint64(i)),        // srcIP: unique per row
			u(uint64(i % 3)),    // destIP
			u(uint64(i) & 0x3f), // flags
			u(uint64(41 + i%7)), // len
		})
	}
	return b
}

// buildColAgg builds a columnar-configured aggregate grouping by
// (time, srcIP) with the given aggregate columns, mirroring what the
// cluster runner compiles for the columnar engine.
func buildColAgg(t *testing.T, out Consumer, aggs []AggColumn, colArgs []*ColExpr, mutate func(*AggregateConfig)) *Aggregate {
	t.Helper()
	r := colTestResolver
	cfg := AggregateConfig{
		GroupBy: []EvalFunc{
			MustCompile(gsql.MustParseExpr("time"), r, nil),
			MustCompile(gsql.MustParseExpr("srcIP"), r, nil),
		},
		ColGroupBy: []ColExpr{
			mustCompileCol(t, "time", r, nil),
			mustCompileCol(t, "srcIP", r, nil),
		},
		EpochIdx:  0,
		EpochOfWM: func(wm uint64) sqlval.Value { return sqlval.Uint(wm / 16) },
		Aggs:      aggs,
		ColArgs:   colArgs,
		Out:       out,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return NewAggregate(cfg)
}

// TestColGroupTableGrows pushes enough distinct groups through the
// map-backed columnar path (MIN is not word-vectorizable, so the dense
// store refuses and colGroup/colInsert carry every row) to force
// colGrow past colTableMin, then checks the emitted groups against the
// row path.
func TestColGroupTableGrows(t *testing.T) {
	r := colTestResolver
	aggs := []AggColumn{
		{Factory: mustFactory(t, "MIN"), Arg: MustCompile(gsql.MustParseExpr("len"), r, nil)},
	}
	colArgs := []*ColExpr{colPtr(mustCompileCol(t, "len", r, nil))}
	var outS, outC Collector
	aggS := buildColAgg(t, &outS, aggs, colArgs, nil)
	aggC := buildColAgg(t, &outC, aggs, colArgs, nil)

	// 3/4 of colTableMin triggers the first doubling; go well past it.
	rows := colAggRows(colTableMin * 2)
	var cb ColBatch
	if !cb.SetFromRows(rows) {
		t.Fatal("SetFromRows failed")
	}
	aggC.PushCols(&cb)
	aggS.PushBatch(rows)
	if aggC.denseN != 0 {
		t.Fatal("MIN must not be dense-eligible")
	}
	if got := aggC.GroupCount(); got != len(rows) {
		t.Fatalf("GroupCount = %d, want %d", got, len(rows))
	}
	aggS.Flush()
	aggC.Flush()
	diffBatches(t, "grown table", outS.Rows, outC.Rows)
}

// TestDenseDeliverHaving drives the dense store's emit through the
// Having fallback: direct column emission is off the table, rows
// materialize, and the predicate filters them exactly like the row
// path.
func TestDenseDeliverHaving(t *testing.T) {
	havingRes := ColsResolver("", []string{"tb", "s", "cnt"})
	aggs := []AggColumn{{Factory: mustFactory(t, "COUNT")}}
	colArgs := []*ColExpr{nil}
	having := MustCompile(gsql.MustParseExpr("cnt > 2"), havingRes, nil)
	var outS, outC Collector
	aggS := buildColAgg(t, &outS, aggs, colArgs, func(cfg *AggregateConfig) { cfg.Having = having })
	aggC := buildColAgg(t, &outC, aggs, colArgs, func(cfg *AggregateConfig) { cfg.Having = having; cfg.ColEmit = true })

	rows := colTestRows(200)
	var cb ColBatch
	if !cb.SetFromRows(rows) {
		t.Fatal("SetFromRows failed")
	}
	aggC.PushCols(&cb)
	aggS.PushBatch(rows)
	if aggC.denseN == 0 {
		t.Fatal("dense store did not engage")
	}
	aggS.Flush()
	aggC.Flush()
	if len(outC.Rows) == 0 {
		t.Fatal("Having filtered everything; pick a weaker predicate")
	}
	diffBatches(t, "dense Having", outS.Rows, outC.Rows)
}

// TestDenseDeliverPost drives the dense emit through the Post
// projection fallback.
func TestDenseDeliverPost(t *testing.T) {
	postRes := ColsResolver("", []string{"tb", "s", "cnt"})
	post := []EvalFunc{
		MustCompile(gsql.MustParseExpr("s"), postRes, nil),
		MustCompile(gsql.MustParseExpr("cnt * 2"), postRes, nil),
	}
	aggs := []AggColumn{{Factory: mustFactory(t, "COUNT")}}
	colArgs := []*ColExpr{nil}
	var outS, outC Collector
	aggS := buildColAgg(t, &outS, aggs, colArgs, func(cfg *AggregateConfig) { cfg.Post = post })
	aggC := buildColAgg(t, &outC, aggs, colArgs, func(cfg *AggregateConfig) { cfg.Post = post; cfg.ColEmit = true })

	rows := colTestRows(200)
	var cb ColBatch
	if !cb.SetFromRows(rows) {
		t.Fatal("SetFromRows failed")
	}
	aggC.PushCols(&cb)
	aggS.PushBatch(rows)
	if aggC.denseN == 0 {
		t.Fatal("dense store did not engage")
	}
	aggS.Flush()
	aggC.Flush()
	diffBatches(t, "dense Post", outS.Rows, outC.Rows)
}

// TestDenseDeliverNegativeSum overflows an integer SUM negative: the
// direct column emission must bail (a uint vector cannot carry a
// negative total) and the materialized rows must match the row path's
// Int result exactly.
func TestDenseDeliverNegativeSum(t *testing.T) {
	r := colTestResolver
	aggs := []AggColumn{
		{Factory: mustFactory(t, "SUM"), Arg: MustCompile(gsql.MustParseExpr("len"), r, nil)},
	}
	colArgs := []*ColExpr{colPtr(mustCompileCol(t, "len", r, nil))}
	var outS, outC Collector
	aggS := buildColAgg(t, &outS, aggs, colArgs, nil)
	aggC := buildColAgg(t, &outC, aggs, colArgs, func(cfg *AggregateConfig) { cfg.ColEmit = true })

	// One row whose len is 2^63: int64(sum) < 0.
	rows := Batch{Tuple{u(0), u(1), u(2), u(3), u(1 << 63)}}
	var cb ColBatch
	if !cb.SetFromRows(rows) {
		t.Fatal("SetFromRows failed")
	}
	aggC.PushCols(&cb)
	aggS.PushBatch(rows)
	if aggC.denseN == 0 {
		t.Fatal("dense store did not engage")
	}
	aggS.Flush()
	aggC.Flush()
	if len(outC.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(outC.Rows))
	}
	if k := outC.Rows[0][2].Kind(); k != sqlval.KindInt {
		t.Fatalf("overflowed SUM emitted as %v, want int", k)
	}
	diffBatches(t, "negative sum", outS.Rows, outC.Rows)
}

// TestUnionPortPushCols checks the union port's columnar forward: a
// batch pushed into any port must reach Out exactly once, pivoted or
// not.
func TestUnionPortPushCols(t *testing.T) {
	var out Collector
	un := NewUnion(2, &out)
	rows := colTestRows(8)
	var cb ColBatch
	if !cb.SetFromRows(rows) {
		t.Fatal("SetFromRows failed")
	}
	p0, ok := un.Port(0).(ColConsumer)
	if !ok {
		t.Fatal("union port does not implement ColConsumer")
	}
	p0.PushCols(&cb)
	if len(out.Rows) != len(rows) {
		t.Fatalf("union forwarded %d rows, want %d", len(out.Rows), len(rows))
	}
	diffBatches(t, "union forward", rows, out.Rows)
}

// TestTrivialColConsumers covers the leaf ColConsumer implementations
// and the list compiler.
func TestTrivialColConsumers(t *testing.T) {
	rows := colTestRows(4)
	var cb ColBatch
	if !cb.SetFromRows(rows) {
		t.Fatal("SetFromRows failed")
	}
	Discard{}.PushCols(&cb)

	var c Collector
	c.PushCols(&cb)
	diffBatches(t, "collector", rows, c.Rows)

	var a, b Collector
	te := &Tee{Outs: []Consumer{&a, &b}}
	te.PushCols(&cb)
	diffBatches(t, "tee a", rows, a.Rows)
	diffBatches(t, "tee b", rows, b.Rows)

	ces, err := CompileColAll([]gsql.Expr{
		gsql.MustParseExpr("srcIP"),
		gsql.MustParseExpr("len + 1"),
	}, colTestResolver, nil)
	if err != nil {
		t.Fatalf("CompileColAll: %v", err)
	}
	if len(ces) != 2 {
		t.Fatalf("CompileColAll returned %d exprs", len(ces))
	}
	for i, ce := range ces {
		if ce.U == nil {
			t.Errorf("expr %d: no kernel", i)
		}
	}
	if _, err := CompileColAll([]gsql.Expr{gsql.MustParseExpr("nosuch")}, colTestResolver, nil); err == nil {
		t.Error("CompileColAll accepted an unresolvable column")
	}
}
