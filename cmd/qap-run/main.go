// Command qap-run executes a GSQL query set on the simulated cluster
// over a synthetic packet trace and reports the query outputs and the
// per-host CPU/network load, under a chosen partitioning strategy.
//
// Usage:
//
//	qap-run [-queries file] [-partition set] [-hosts n] [-rate pps]
//	        [-duration sec] [-seed n] [-show n] [-plan]
//
// Examples:
//
//	qap-run -partition srcIP -hosts 4
//	qap-run -queries monitor.gsql -partition 'srcIP & 0xFFF0, destIP'
//	qap-run -partition srcIP -metrics-out report.json   # JSON run report
//	qap-run -partition srcIP -report                    # Prometheus text
//	qap-run -drift -adaptive                            # drift + repartition
//	qap-run -drift -adaptive -trace-out run.jsonl       # causal trace
//	qap-run -partition srcIP -telemetry-addr :8080 -telemetry-hold 60s
//	qap-run -partition srcIP -engine live               # TCP cluster backend
//	qap-run -engine live -nodes 'host1:9430,host2:9430' # separate-process nodes
//
// With -engine live each simulated host runs as a node behind a real
// TCP listener (in-process by default; with -nodes, separate qap-node
// processes) and the splitter ships serialized tuple batches over
// persistent connections with credit-based backpressure. Outputs,
// metrics, and traces are byte-identical to the simulator's.
//
// With -drift the generated trace gains a second phase with the
// source/destination pools swapped and the rate trebled; with
// -adaptive the run is driven by the online repartitioning controller:
// load is monitored per -load-window, and when the measured max-host
// network rate exceeds -trigger-factor times the cost model's bound
// the statistics are refreshed, the optimizer re-runs, and the stream
// is replayed on the new partitioning.
//
// With -trace-out the run records a deterministic causal trace —
// events keyed by round, window, host, and operator, never wall clock
// — written as JSONL (inspect it with cmd/qap-trace). -trace-chrome
// writes the same trace as Chrome trace_event JSON for about:tracing.
// With -telemetry-addr the process serves live telemetry over HTTP:
// the run report's Prometheus rendering at /metrics, expvar counters
// at /debug/vars, and net/http/pprof under /debug/pprof/.
//
// To check a query set statically before running it — partitioning
// compatibility per node, window alignment, dead columns — see
// cmd/qap-lint.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"qap"
	"qap/internal/netgen"
	"qap/internal/obs/trace"
)

// appFlags holds the parsed command line. Definitions live in
// defineFlags so the usage golden test renders the same FlagSet main
// uses.
type appFlags struct {
	queryFile     string
	partition     string
	hosts         int
	pph           int
	rate          int
	duration      int
	seed          int64
	show          int
	showPlan      bool
	dotPlan       bool
	naiveScope    bool
	noPartial     bool
	traceFile     string
	dumpFile      string
	workers       int
	batch         int
	columnar      bool
	metricsOut    string
	report        bool
	promOut       string
	drift         bool
	adaptive      bool
	triggerFactor float64
	loadWindow    int
	traceOut      string
	traceChrome   string
	traceRing     int
	telemetryAddr string
	telemetryHold time.Duration
	engine        string
	nodes         string
	netTimeout    time.Duration
	driveTimeout  time.Duration
}

func defineFlags(fs *flag.FlagSet) *appFlags {
	f := &appFlags{}
	fs.StringVar(&f.queryFile, "queries", "", "GSQL query set file (default: the paper's Section 3.2 set)")
	fs.StringVar(&f.partition, "partition", "", "partitioning set, e.g. 'srcIP, destIP' (empty = round robin)")
	fs.IntVar(&f.hosts, "hosts", 4, "cluster size")
	fs.IntVar(&f.pph, "pph", 2, "stream partitions per host")
	fs.IntVar(&f.rate, "rate", 2000, "trace packet rate (packets/sec)")
	fs.IntVar(&f.duration, "duration", 120, "trace duration (sec)")
	fs.Int64Var(&f.seed, "seed", 1, "trace random seed")
	fs.IntVar(&f.show, "show", 5, "result rows to print per query")
	fs.BoolVar(&f.showPlan, "plan", false, "print the distributed physical plan")
	fs.BoolVar(&f.dotPlan, "dot", false, "print the physical plan as Graphviz DOT and exit")
	fs.BoolVar(&f.naiveScope, "naive", false, "use per-partition (naive) partial aggregation")
	fs.BoolVar(&f.noPartial, "nopartial", false, "disable partial aggregation (required for the Section 4.2.1 load bound to be tight)")
	fs.StringVar(&f.traceFile, "trace", "", "CSV packet trace file to replay instead of generating one")
	fs.StringVar(&f.dumpFile, "dump", "", "write the generated packet trace to this CSV file")
	fs.IntVar(&f.workers, "workers", runtime.GOMAXPROCS(0), "simulator worker goroutines (1 = sequential engine; results are identical for any value)")
	fs.IntVar(&f.batch, "batch", 0, "operator batch size (0 = engine default, 1 = tuple-at-a-time; results are identical for any value)")
	fs.BoolVar(&f.columnar, "columnar", false, "use the columnar batch execution path (requires batch > 1; results are identical either way)")
	fs.StringVar(&f.metricsOut, "metrics-out", "", "write the machine-readable JSON run report to this file")
	fs.BoolVar(&f.report, "report", false, "print the run report in Prometheus text format")
	fs.StringVar(&f.promOut, "prom-out", "", "write the run report in Prometheus text format to this file")
	fs.BoolVar(&f.drift, "drift", false, "append a drifted phase to the generated trace: pools swapped, 3x rate, same duration")
	fs.BoolVar(&f.adaptive, "adaptive", false, "monitor load and repartition online when the bound is violated")
	fs.Float64Var(&f.triggerFactor, "trigger-factor", 1.5, "repartition when measured load exceeds this factor times the bound")
	fs.IntVar(&f.loadWindow, "load-window", 0, "load-monitoring window in trace seconds (0 = off; -adaptive and tracing default to 10)")
	fs.StringVar(&f.traceOut, "trace-out", "", "write the run's deterministic causal trace as JSONL to this file (inspect with qap-trace)")
	fs.StringVar(&f.traceChrome, "trace-chrome", "", "write the run's causal trace as Chrome trace_event JSON to this file")
	fs.IntVar(&f.traceRing, "trace-ring", 0, "bound the causal trace to the last n events per island (flight recorder; 0 = whole-run capture)")
	fs.StringVar(&f.telemetryAddr, "telemetry-addr", "", "serve live telemetry over HTTP on this address: /metrics, /debug/vars, /debug/pprof/")
	fs.DurationVar(&f.telemetryHold, "telemetry-hold", 0, "keep serving telemetry this long after the run before exiting (0 = exit immediately)")
	fs.StringVar(&f.engine, "engine", "sim", "cluster backend: sim (in-process simulator) or live (TCP nodes; results are identical)")
	fs.StringVar(&f.nodes, "nodes", "", "comma-separated qap-node addresses, one per host (live engine; empty = in-process nodes)")
	fs.DurationVar(&f.netTimeout, "net-timeout", 0, "live transport timeout: dial, read, and credit waits (0 = 30s default)")
	fs.DurationVar(&f.driveTimeout, "drive-timeout", 0, "fail the run if the drive loop stalls this long (0 = live transport timeout; sim unguarded)")
	return f
}

func main() {
	f := defineFlags(flag.CommandLine)
	flag.Parse()

	queries := qap.ComplexQuerySet
	if f.queryFile != "" {
		b, err := os.ReadFile(f.queryFile)
		if err != nil {
			fatal(err)
		}
		queries = string(b)
	}
	sys, err := qap.Load(netgen.SchemaDDL, queries)
	if err != nil {
		fatal(err)
	}

	var ps qap.Set
	if f.partition != "" {
		ps, err = qap.ParseSet(f.partition)
		if err != nil {
			fatal(err)
		}
	}
	scope := qap.ScopeHost
	if f.naiveScope {
		scope = qap.ScopePartition
	}
	params := map[string]qap.Value{"PATTERN": qap.Uint(netgen.AttackPattern)}

	// Assemble the trace. preDriftSec is how much of its prefix is
	// representative of the pre-drift regime (used by -adaptive to
	// measure deploy-time statistics).
	var packets []netgen.Packet
	preDriftSec := uint64(f.duration)
	if f.traceFile != "" {
		file, err := os.Open(f.traceFile)
		if err != nil {
			fatal(err)
		}
		packets, err = netgen.ReadCSV(file)
		file.Close()
		if err != nil {
			fatal(err)
		}
		if n := len(packets); n > 0 {
			// Without generator metadata, treat the first half of the
			// replayed trace as the pre-drift regime.
			preDriftSec = (packets[n-1].Time + 1) / 2
		}
		fmt.Printf("trace: %d packets from %s\n", len(packets), f.traceFile)
	} else {
		cfg := netgen.DefaultConfig()
		cfg.Seed, cfg.DurationSec, cfg.PacketsPerSec = f.seed, f.duration, f.rate
		if f.drift {
			cfg.Phases = []netgen.Phase{
				{DurationSec: f.duration},
				{DurationSec: f.duration, PacketsPerSec: 3 * f.rate,
					SrcHosts: cfg.DstHosts, DstHosts: cfg.SrcHosts},
			}
		}
		if err := cfg.Validate(); err != nil {
			fatal(err)
		}
		gen := netgen.Generate(cfg)
		packets = gen.Packets
		fmt.Printf("trace: %d packets over %ds (%d flows, %d suspicious)\n",
			len(packets), cfg.TotalDurationSec(), gen.TotalFlows, gen.AttackFlows)
	}
	if f.dumpFile != "" {
		file, err := os.Create(f.dumpFile)
		if err != nil {
			fatal(err)
		}
		err = netgen.WriteCSV(file, packets)
		if cerr := file.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace to %s\n", f.dumpFile)
	}

	// Live telemetry starts before the run so the pprof endpoints can
	// profile it; /metrics serves the report once the run publishes it.
	tel, err := f.startTelemetry()
	if err != nil {
		fatal(err)
	}

	baseCfg := qap.DeployConfig{
		Hosts:             f.hosts,
		PartitionsPerHost: f.pph,
		Partitioning:      ps,
		PartialScope:      scope,
		DisablePartialAgg: f.noPartial,
		Costs:             qap.CostConfig{CapacityPerSec: float64(f.rate) * 3},
		Params:            params,
		Workers:           f.workers,
		BatchSize:         f.batch,
		Columnar:          f.columnar,
		CollectStats:      f.metricsOut != "" || f.report || f.promOut != "" || f.telemetryAddr != "",
		LoadWindowSec:     f.loadWindow,
		Engine:            f.engine,
		Live:              qap.LiveOptions{Nodes: splitNodes(f.nodes), Timeout: f.netTimeout},
		DriveTimeout:      f.driveTimeout,
	}
	if tc := f.traceConfig(); tc != nil {
		baseCfg.Trace = tc
	}

	var res *qap.RunResult
	var runTrace *qap.RunTrace
	if f.adaptive {
		res, runTrace = runAdaptive(sys, baseCfg, packets, preDriftSec, f.triggerFactor, f.loadWindow)
	} else {
		dep, err := sys.Deploy(baseCfg)
		if err != nil {
			fatal(err)
		}
		if f.dotPlan {
			fmt.Print(dep.PlanDOT())
			return
		}
		if f.showPlan {
			fmt.Println("distributed plan:")
			fmt.Print(dep.PlanString())
			fmt.Println()
		}
		if ps.IsEmpty() {
			fmt.Println("partitioning: round robin (query-agnostic)")
		} else {
			fmt.Printf("partitioning: %s\n", ps)
		}
		res, err = dep.Run("TCP", packets)
		if err != nil {
			fatal(err)
		}
		runTrace = res.Trace
	}

	printOutputs(res, f.show)
	fmt.Println("\nload:")
	fmt.Print(res.Metrics.String())

	f.writeTrace(runTrace)

	if rep := res.Report(); rep != nil {
		if f.metricsOut != "" {
			b, err := rep.JSON()
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(f.metricsOut, b, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("\nwrote run report to %s\n", f.metricsOut)
		}
		if f.promOut != "" {
			if err := os.WriteFile(f.promOut, []byte(rep.Prometheus()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("\nwrote Prometheus report to %s\n", f.promOut)
		}
		if tel != nil {
			tel.SetReport(rep)
		}
		if f.report {
			fmt.Println("\nreport:")
			fmt.Print(rep.Prometheus())
		}
	}

	if tel != nil && f.telemetryHold > 0 {
		fmt.Printf("\nholding telemetry for %s\n", f.telemetryHold)
		time.Sleep(f.telemetryHold) //qap:allow walltime -- interactive serving window, not simulated results
	}
}

// traceConfig maps the -trace-* flags onto a capture config, nil when
// tracing is off (the default: tracing must cost nothing unless asked
// for).
func (f *appFlags) traceConfig() *qap.RunTraceConfig {
	if f.traceOut == "" && f.traceChrome == "" {
		return nil
	}
	cfg := &qap.RunTraceConfig{}
	if f.traceRing > 0 {
		cfg.Mode = trace.ModeRing
		cfg.RingSize = f.traceRing
	}
	return cfg
}

// writeTrace exports the run's causal trace per the -trace-* flags.
func (f *appFlags) writeTrace(tr *qap.RunTrace) {
	if tr == nil {
		return
	}
	if f.traceOut != "" {
		b, err := tr.JSONL()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(f.traceOut, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote causal trace (%d records) to %s\n", len(tr.Records), f.traceOut)
	}
	if f.traceChrome != "" {
		b, err := tr.ChromeJSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(f.traceChrome, b, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Chrome trace to %s\n", f.traceChrome)
	}
}

// startTelemetry brings up the -telemetry-addr HTTP listener, nil when
// the flag is unset.
func (f *appFlags) startTelemetry() (*qap.Telemetry, error) {
	if f.telemetryAddr == "" {
		return nil, nil
	}
	tel := qap.NewTelemetry()
	ln, err := tel.Serve(f.telemetryAddr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("telemetry: http://%s (/metrics, /debug/vars, /debug/pprof/)\n", ln.Addr())
	return tel, nil
}

// runAdaptive drives the online repartitioning controller: measure
// statistics on the pre-drift prefix, optimize, then run the full
// trace under monitoring with the given trigger. Returns the final
// (authoritative) run result and the composed causal trace.
func runAdaptive(sys *qap.System, deploy qap.DeployConfig, packets []netgen.Packet, preDriftSec uint64, factor float64, loadWindow int) (*qap.RunResult, *qap.RunTrace) {
	cut := sort.Search(len(packets), func(i int) bool { return packets[i].Time >= preDriftSec })
	stats, err := sys.MeasureStats(map[string][]netgen.Packet{"TCP": packets[:cut]})
	if err != nil {
		fatal(fmt.Errorf("measuring pre-drift statistics: %w", err))
	}
	analysis, err := sys.Analyze(stats)
	if err != nil {
		fatal(err)
	}
	if deploy.Partitioning.IsEmpty() {
		deploy.Partitioning = analysis.Best
	}
	fmt.Printf("partitioning: %s (adaptive, trigger %.2fx bound)\n", deploy.Partitioning, factor)

	ares, err := sys.RunAdaptive(qap.AdaptiveConfig{
		Deploy:        deploy,
		Stats:         stats,
		Analysis:      analysis,
		TriggerFactor: factor,
		LoadWindowSec: loadWindow,
	}, map[string][]netgen.Packet{"TCP": packets})
	if err != nil {
		fatal(err)
	}

	if ares.TriggerWindow < 0 {
		fmt.Printf("trigger: never fired (bound %.0f B/s, factor %.2f)\n", ares.Bound, ares.TriggerFactor)
		return ares.Final, ares.Trace
	}
	fmt.Printf("trigger: window %d (t=%ds) measured %.0f B/s > %.2f x bound %.0f B/s\n",
		ares.TriggerWindow, ares.SwitchTimeSec, ares.TriggerRate, ares.TriggerFactor, ares.Bound)
	if !ares.Repartitioned {
		fmt.Printf("re-optimization confirmed %s; no switch\n", ares.InitialSet)
		return ares.Final, ares.Trace
	}
	fmt.Printf("repartitioned: %s -> %s at t=%ds\n", ares.InitialSet, ares.FinalSet, ares.SwitchTimeSec)
	fmt.Printf("post-switch peak %.0f B/s vs refreshed bound %.0f B/s (within bound: %v)\n",
		ares.PostSwitchPeak, ares.NewBound, ares.WithinBoundAfterSwitch())
	return ares.Final, ares.Trace
}

func printOutputs(res *qap.RunResult, show int) {
	for _, name := range res.OutputNames() {
		rows := res.Outputs[name]
		fmt.Printf("\n%s: %d rows\n", name, len(rows))
		for i, r := range rows {
			if i >= show {
				fmt.Printf("  ... %d more\n", len(rows)-show)
				break
			}
			fmt.Printf("  %s\n", r)
		}
	}
}

// splitNodes parses the -nodes list; empty means in-process nodes.
func splitNodes(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qap-run:", err)
	os.Exit(1)
}
