package netgen

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// csvHeader is the column order of the CSV trace format, matching
// SchemaDDL.
var csvHeader = []string{"time", "srcIP", "destIP", "srcPort", "destPort", "len", "flags", "seq"}

// WriteCSV emits a trace in the CSV exchange format: a header row then
// one row per packet, IPs in dotted-quad notation.
func WriteCSV(w io.Writer, packets []Packet) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	row := make([]string, len(csvHeader))
	for i := range packets {
		p := &packets[i]
		row[0] = strconv.FormatUint(p.Time, 10)
		row[1] = formatIP(p.SrcIP)
		row[2] = formatIP(p.DestIP)
		row[3] = strconv.FormatUint(p.SrcPort, 10)
		row[4] = strconv.FormatUint(p.DestPort, 10)
		row[5] = strconv.FormatUint(p.Len, 10)
		row[6] = strconv.FormatUint(p.Flags, 10)
		row[7] = strconv.FormatUint(p.Seq, 10)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV trace. The header row is required; IPs may be
// dotted quads or plain integers. Packets must be time-ordered (the
// executor's watermarks depend on it); out-of-order rows are an error.
func ReadCSV(r io.Reader) ([]Packet, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("netgen: reading CSV header: %w", err)
	}
	// Map header columns to fields, tolerating reordering.
	idx := make([]int, len(csvHeader))
	for i := range idx {
		idx[i] = -1
	}
	for col, name := range header {
		for i, want := range csvHeader {
			if strings.EqualFold(strings.TrimSpace(name), want) {
				idx[i] = col
			}
		}
	}
	for i, want := range csvHeader {
		if idx[i] < 0 {
			return nil, fmt.Errorf("netgen: CSV header missing column %q", want)
		}
	}
	var out []Packet
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("netgen: CSV line %d: %w", line+1, err)
		}
		line++
		get := func(i int) string { return strings.TrimSpace(rec[idx[i]]) }
		var p Packet
		fields := []struct {
			dst  *uint64
			text string
			ip   bool
		}{
			{&p.Time, get(0), false},
			{&p.SrcIP, get(1), true},
			{&p.DestIP, get(2), true},
			{&p.SrcPort, get(3), false},
			{&p.DestPort, get(4), false},
			{&p.Len, get(5), false},
			{&p.Flags, get(6), false},
			{&p.Seq, get(7), false},
		}
		for _, f := range fields {
			v, err := parseField(f.text, f.ip)
			if err != nil {
				return nil, fmt.Errorf("netgen: CSV line %d: %w", line, err)
			}
			*f.dst = v
		}
		if len(out) > 0 && p.Time < out[len(out)-1].Time {
			return nil, fmt.Errorf("netgen: CSV line %d: packets not time-ordered", line)
		}
		out = append(out, p)
	}
}

func formatIP(u uint64) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

func parseField(s string, ip bool) (uint64, error) {
	if ip && strings.Contains(s, ".") {
		parts := strings.Split(s, ".")
		if len(parts) != 4 {
			return 0, fmt.Errorf("bad IPv4 %q", s)
		}
		var v uint64
		for _, part := range parts {
			b, err := strconv.ParseUint(part, 10, 8)
			if err != nil {
				return 0, fmt.Errorf("bad IPv4 %q: %v", s, err)
			}
			v = v<<8 | b
		}
		return v, nil
	}
	v, err := strconv.ParseUint(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q: %v", s, err)
	}
	return v, nil
}
