package prove_test

import (
	"bytes"
	"testing"

	"qap"
	"qap/internal/prove"
)

// FuzzCertificateRoundTrip feeds arbitrary bytes to the strict
// certificate parser: it must never panic, and any input it accepts
// must re-encode to canonical bytes that parse back to the same
// certificate (a fixed point after one canonicalization).
func FuzzCertificateRoundTrip(f *testing.F) {
	sys, err := qap.Load(qap.TCPSchemaDDL, figure1)
	if err != nil {
		f.Fatal(err)
	}
	for _, set := range []string{"", "srcIP", "srcIP & 0xFFF0, destIP"} {
		cert := prove.Prove(sys.Graph, qap.MustParseSet(set))
		b, err := cert.CanonicalJSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte(`{"version":1,"set":"()","fingerprint":"x","nodes":[]}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := prove.ParseCertificate(data)
		if err != nil {
			return
		}
		b1, err := c.CanonicalJSON()
		if err != nil {
			t.Fatalf("accepted certificate failed to re-encode: %v", err)
		}
		c2, err := prove.ParseCertificate(b1)
		if err != nil {
			t.Fatalf("canonical bytes failed to reparse: %v", err)
		}
		b2, err := c2.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("canonicalization is not a fixed point:\n%s\nvs\n%s", b1, b2)
		}
	})
}
