package optimizer

import (
	"strings"
	"testing"

	"qap/internal/core"
	"qap/internal/gsql"
	"qap/internal/plan"
	"qap/internal/schema"
)

const tcpDDL = `TCP(time increasing, srcIP, destIP, srcPort, destPort, len, flags)`

const flowsOnly = `
query flows:
SELECT tb, srcIP, destIP, COUNT(*) as cnt
FROM TCP
GROUP BY time/60 as tb, srcIP, destIP`

const complexSet = flowsOnly + `
query heavy_flows:
SELECT tb, srcIP, max(cnt) as max_cnt
FROM flows
GROUP BY tb, srcIP

query flow_pairs:
SELECT S1.tb, S1.srcIP, S1.max_cnt, S2.max_cnt
FROM heavy_flows S1, heavy_flows S2
WHERE S1.srcIP = S2.srcIP and S1.tb = S2.tb+1`

func buildGraph(t *testing.T, queries string) *plan.Graph {
	t.Helper()
	g, err := plan.Build(schema.MustParse(tcpDDL), gsql.MustParseQuerySet(queries))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func opts(hosts int) Options {
	return Options{Hosts: hosts, PartitionsPerHost: 2, PartialAgg: true, PartialScope: ScopeHost}
}

func TestFigure3PartitionAgnosticPlan(t *testing.T) {
	// Figure 3: 6 partitions over 3 hosts, one central merge feeding a
	// central aggregation. Reproduced with partial aggregation off and
	// no partitioning set.
	g := buildGraph(t, flowsOnly)
	o := opts(3)
	o.PartialAgg = false
	p := MustBuild(g, nil, o)
	if p.Partitions != 6 {
		t.Fatalf("partitions = %d", p.Partitions)
	}
	if got := p.CountKind(OpScan); got != 6 {
		t.Errorf("scans = %d, want 6", got)
	}
	if got := p.CountKind(OpUnion); got != 1 {
		t.Errorf("unions = %d, want 1", got)
	}
	if got := p.CountKind(OpAggregate); got != 1 {
		t.Errorf("aggregates = %d, want 1 central", got)
	}
	for _, op := range p.Ops {
		if op.Kind == OpAggregate && op.Host != p.AggregatorHost {
			t.Error("central aggregate must sit on the aggregator host")
		}
	}
	// Partitions are spread over hosts in blocks of 2.
	if p.HostOfPartition(0) != 0 || p.HostOfPartition(1) != 0 || p.HostOfPartition(5) != 2 {
		t.Error("partition placement wrong")
	}
}

func TestFigure4AggregationPushdown(t *testing.T) {
	// Compatible partitioning: one aggregate per partition, merged by
	// a plain union; no central aggregation at all.
	g := buildGraph(t, flowsOnly)
	p := MustBuild(g, core.MustParseSet("srcIP, destIP"), opts(3))
	if got := p.CountKind(OpAggregate); got != 6 {
		t.Errorf("per-partition aggregates = %d, want 6", got)
	}
	if got := p.CountKind(OpAggSuper) + p.CountKind(OpAggSub); got != 0 {
		t.Errorf("no partial aggregation expected, found %d", got)
	}
	// Each per-partition aggregate sits on its partition's host.
	for _, op := range p.Ops {
		if op.Kind == OpAggregate {
			if op.Partition < 0 || op.Host != p.HostOfPartition(op.Partition) {
				t.Errorf("aggregate %s misplaced", op.Label())
			}
		}
	}
}

func TestFigure5PartialAggregation(t *testing.T) {
	// Incompatible (round-robin) partitioning with host-scope partial
	// aggregation: per-host local union + sub-aggregate, one central
	// super-aggregate (Figure 5's plan).
	g := buildGraph(t, flowsOnly)
	p := MustBuild(g, nil, opts(3))
	if got := p.CountKind(OpAggSub); got != 3 {
		t.Errorf("sub-aggregates = %d, want 3 (one per host)", got)
	}
	if got := p.CountKind(OpAggSuper); got != 1 {
		t.Errorf("super-aggregates = %d, want 1", got)
	}
	// Local unions (per host) + central union above subs.
	if got := p.CountKind(OpUnion); got != 4 {
		t.Errorf("unions = %d, want 3 local + 1 central", got)
	}
	// Naive variant: sub-aggregate per partition, no local unions.
	o := opts(3)
	o.PartialScope = ScopePartition
	p2 := MustBuild(g, nil, o)
	if got := p2.CountKind(OpAggSub); got != 6 {
		t.Errorf("naive sub-aggregates = %d, want 6", got)
	}
	if got := p2.CountKind(OpUnion); got != 1 {
		t.Errorf("naive unions = %d, want 1 central", got)
	}
}

func TestFigure7JoinPushdown(t *testing.T) {
	// A compatible self-join runs pair-wise per partition.
	g := buildGraph(t, complexSet)
	p := MustBuild(g, core.MustParseSet("srcIP"), opts(3))
	if got := p.CountKind(OpJoin); got != 6 {
		t.Errorf("joins = %d, want 6 pair-wise", got)
	}
	for _, op := range p.Ops {
		if op.Kind == OpJoin {
			if len(op.Inputs) != 2 || op.Inputs[0] != op.Inputs[1] {
				t.Error("self-join partitions must read the same producer twice")
			}
			if op.Inputs[0].Partition != op.Partition {
				t.Error("pair-wise join must align partitions")
			}
		}
	}
	// Fully compatible chain: no central aggregation work at all; the
	// only central ops are the final union/outputs.
	if p.CountKind(OpAggSuper) != 0 {
		t.Error("no super-aggregate expected under (srcIP)")
	}
}

func TestFigure12PartiallyCompatiblePlan(t *testing.T) {
	// Under (srcIP, destIP), flows pushes down per partition but
	// heavy_flows and flow_pairs centralize (Figure 12 shows flows and
	// the filter below the merge, gamma2 and the join above).
	g := buildGraph(t, complexSet)
	p := MustBuild(g, core.MustParseSet("srcIP, destIP"), opts(4))
	flowsOps, hfCentral, joinCentral := 0, 0, 0
	for _, op := range p.Ops {
		if op.Logical == nil {
			continue
		}
		switch op.Logical.QueryName {
		case "flows":
			if op.Kind == OpAggregate && op.Partition >= 0 {
				flowsOps++
			}
		case "heavy_flows":
			if op.Partition == -1 && (op.Kind == OpAggregate || op.Kind == OpAggSuper) {
				hfCentral++
			}
		case "flow_pairs":
			if op.Kind == OpJoin && op.Partition == -1 {
				joinCentral++
			}
		}
	}
	if flowsOps != 8 {
		t.Errorf("flows per-partition aggregates = %d, want 8", flowsOps)
	}
	if hfCentral == 0 {
		t.Error("heavy_flows must centralize under (srcIP, destIP)")
	}
	if joinCentral != 1 {
		t.Errorf("flow_pairs central joins = %d, want 1", joinCentral)
	}
}

func TestSelectProjectAlwaysPushesDown(t *testing.T) {
	g := buildGraph(t, `SELECT time, srcIP FROM TCP WHERE destPort = 80`)
	p := MustBuild(g, nil, opts(2)) // even with round robin
	if got := p.CountKind(OpSelProj); got != 4 {
		t.Errorf("per-partition sel/proj = %d, want 4", got)
	}
}

func TestHolisticAggregateCannotSplit(t *testing.T) {
	g := buildGraph(t, `SELECT tb, COUNT_DISTINCT(srcIP) FROM TCP GROUP BY time/60 AS tb`)
	p := MustBuild(g, nil, opts(2))
	if p.CountKind(OpAggSub) != 0 || p.CountKind(OpAggSuper) != 0 {
		t.Error("holistic aggregate must not split")
	}
	if p.CountKind(OpAggregate) != 1 {
		t.Error("holistic aggregate should centralize")
	}
}

func TestSharedSourcePushdownForMultipleQueries(t *testing.T) {
	// Two independent aggregations over TCP, partitioned compatibly
	// with only one of them: the compatible one pushes down, the other
	// takes the partial-aggregation path. The shared scans feed both.
	g := buildGraph(t, `
query by_src: SELECT tb, srcIP, COUNT(*) FROM TCP GROUP BY time/60 AS tb, srcIP
query by_dst: SELECT tb, destIP, COUNT(*) FROM TCP GROUP BY time/60 AS tb, destIP`)
	p := MustBuild(g, core.MustParseSet("srcIP"), opts(2))
	if got := p.CountKind(OpScan); got != 4 {
		t.Errorf("scans = %d, want 4 shared", got)
	}
	if got := p.CountKind(OpAggregate); got != 4 {
		t.Errorf("by_src per-partition aggregates = %d, want 4", got)
	}
	if got := p.CountKind(OpAggSuper); got != 1 {
		t.Errorf("by_dst super-aggregates = %d, want 1", got)
	}
	if len(p.Outputs) != 2 {
		t.Errorf("outputs = %d", len(p.Outputs))
	}
}

func TestBuildValidation(t *testing.T) {
	g := buildGraph(t, flowsOnly)
	if _, err := Build(g, nil, Options{Hosts: 0, PartitionsPerHost: 2}); err == nil {
		t.Error("zero hosts should fail")
	}
	if _, err := Build(g, nil, Options{Hosts: 2, PartitionsPerHost: 0}); err == nil {
		t.Error("zero partitions should fail")
	}
	if _, err := Build(g, nil, Options{Hosts: 2, PartitionsPerHost: 1, AggregatorHost: 5}); err == nil {
		t.Error("out-of-range aggregator should fail")
	}
}

func TestPlanStringAndTopoOrder(t *testing.T) {
	g := buildGraph(t, complexSet)
	p := MustBuild(g, core.MustParseSet("srcIP"), opts(2))
	s := p.String()
	for _, want := range []string{"scan TCP[p0]", "join flow_pairs", "output"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan print missing %q:\n%s", want, s)
		}
	}
	pos := make(map[*Op]int)
	for i, op := range p.Ops {
		pos[op] = i
	}
	for _, op := range p.Ops {
		for _, in := range op.Inputs {
			if pos[in] >= pos[op] {
				t.Fatalf("op %s appears before its input %s", op.Label(), in.Label())
			}
		}
	}
}
