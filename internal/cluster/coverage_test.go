package cluster

import (
	"strings"
	"testing"

	"qap/internal/core"
	"qap/internal/optimizer"
)

// TestSelectProjectThroughCluster exercises pushed-down
// selection/projection end to end: a filter feeding an aggregation,
// plus a pure projection root.
func TestSelectProjectThroughCluster(t *testing.T) {
	tr := smallTrace(t)
	g := buildGraph(t, `
query web:
SELECT time, srcIP, destIP, len
FROM TCP WHERE destPort = 80

query web_flows:
SELECT tb, srcIP, destIP, COUNT(*) AS cnt, SUM(len) AS bytes
FROM web GROUP BY time/60 AS tb, srcIP, destIP

query subnets:
SELECT time, srcIP & 0xFFF0 AS subnet, len FROM TCP`)
	want := centralized(t, g, tr)
	if len(want.Outputs["web_flows"]) == 0 || len(want.Outputs["subnets"]) == 0 {
		t.Fatal("workload produced no rows")
	}
	got := runConfig(t, g, core.MustParseSet("srcIP, destIP"),
		optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true}, tr)
	for name, rows := range want.Outputs {
		sameOutputs(t, name, rows, got.Outputs[name])
	}
	// The projection roots at full stream volume: subnets row count
	// equals the trace length.
	if len(want.Outputs["subnets"]) != len(tr.Packets) {
		t.Errorf("projection dropped rows: %d vs %d", len(want.Outputs["subnets"]), len(tr.Packets))
	}
}

func TestOverloadFactor(t *testing.T) {
	m := &Metrics{Hosts: make([]HostMetrics, 1), DurationSec: 10, Capacity: 100}
	m.Hosts[0].CPUUnits = 500 // 50% loaded
	if got := m.OverloadFactor(0); got != 0 {
		t.Errorf("under capacity should be 0, got %f", got)
	}
	m.Hosts[0].CPUUnits = 2000 // 200% demanded
	if got := m.OverloadFactor(0); got != 0.5 {
		t.Errorf("2x demand sheds half the work: got %f", got)
	}
	// Unset capacity reports 0.
	m2 := &Metrics{Hosts: make([]HostMetrics, 1), DurationSec: 10}
	if m2.OverloadFactor(0) != 0 {
		t.Error("zero capacity should report 0")
	}
}

func TestNaiveOverloadsAtScaleLikeFigure8(t *testing.T) {
	// Figure 8's overload point: with a tight capacity, the naive
	// 4-host aggregator exceeds capacity (drops tuples) while the
	// partitioned deployment stays inside it.
	tr := smallTrace(t)
	g := buildGraph(t, suspiciousQuery)
	run := func(ps core.Set) *Metrics {
		p := optimizer.MustBuild(g, ps, optimizer.Options{
			Hosts: 4, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopePartition})
		cost := DefaultCosts()
		cost.CapacityPerSec = 700 // tight
		r, err := New(p, cost, testParams)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run("TCP", tr.Packets)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	naive := run(nil)
	part := run(core.MustParseSet("srcIP, destIP, srcPort, destPort"))
	if naive.OverloadFactor(0) <= 0 {
		t.Errorf("naive aggregator should overload: load %.1f%%", naive.CPULoad(0))
	}
	if part.OverloadFactor(0) > 0 {
		t.Errorf("partitioned aggregator should stay within capacity: load %.1f%%", part.CPULoad(0))
	}
}

func TestPhysicalPlanDOT(t *testing.T) {
	g := buildGraph(t, complexSet)
	p := optimizer.MustBuild(g, core.MustParseSet("srcIP"),
		optimizer.Options{Hosts: 2, PartitionsPerHost: 2, PartialAgg: true})
	dot := p.DOT()
	for _, want := range []string{
		"digraph physical", "cluster_host0", "cluster_host1",
		"⋈ flow_pairs", "γ flows", "color=red", // cross-host edge
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("physical DOT missing %q", want)
		}
	}
	ldot := g.DOT()
	for _, want := range []string{"digraph logical", "γ flows", "⋈ flow_pairs", "TCP"} {
		if !strings.Contains(ldot, want) {
			t.Errorf("logical DOT missing %q", want)
		}
	}
}

func TestJoinResolverErrors(t *testing.T) {
	// Compile-time failures in join expressions surface as New()
	// errors with context, not panics.
	g := buildGraph(t, complexSet)
	p := optimizer.MustBuild(g, nil, optimizer.Options{Hosts: 1, PartitionsPerHost: 1})
	if _, err := New(p, DefaultCosts(), nil); err != nil {
		t.Fatalf("valid plan should compile: %v", err)
	}
}

func TestEmptyAndTinyTraces(t *testing.T) {
	g := buildGraph(t, complexSet)
	p := optimizer.MustBuild(g, core.MustParseSet("srcIP"),
		optimizer.Options{Hosts: 2, PartitionsPerHost: 2})
	r, err := New(p, DefaultCosts(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run("TCP", nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range res.Outputs {
		if len(rows) != 0 {
			t.Errorf("%s emitted %d rows on empty trace", name, len(rows))
		}
	}
	// Single packet: flows emits one group at flush; the join finds no
	// consecutive-epoch partner.
	r2, _ := New(optimizer.MustBuild(g, nil, optimizer.Options{Hosts: 1, PartitionsPerHost: 1}), DefaultCosts(), testParams)
	tr := smallTrace(t)
	res2, err := r2.Run("TCP", tr.Packets[:1])
	if err != nil {
		t.Fatal(err)
	}
	if res2.NodeRows["flows"] != 1 {
		t.Errorf("single packet should yield one flow, got %d", res2.NodeRows["flows"])
	}
	if len(res2.Outputs["flow_pairs"]) != 0 {
		t.Error("single packet cannot produce flow pairs")
	}
}

func TestIntArithmeticThroughQueries(t *testing.T) {
	// Negative intermediate values (uint subtraction underflow
	// promotes to int) flow through aggregation correctly.
	tr := smallTrace(t)
	g := buildGraph(t, `
query deltas:
SELECT tb, srcIP, MIN(len - 800) AS min_delta, MAX(len - 800) AS max_delta
FROM TCP GROUP BY time/60 AS tb, srcIP`)
	res := centralized(t, g, tr)
	rows := res.Outputs["deltas"]
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	sawNegative := false
	for _, r := range rows {
		minV, _ := r[2].AsInt()
		maxV, _ := r[3].AsInt()
		if minV > maxV {
			t.Fatalf("min %d > max %d", minV, maxV)
		}
		if minV < 0 {
			sawNegative = true
		}
	}
	if !sawNegative {
		t.Error("expected some negative deltas (len < 800 exists in the trace)")
	}
}
