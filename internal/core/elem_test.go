package core

import (
	"testing"
	"testing/quick"
)

func TestIsCoarseningOf(t *testing.T) {
	cases := []struct {
		e, g string
		want bool
	}{
		// Anything is a function of the bare attribute.
		{"srcIP", "srcIP", true},
		{"srcIP & 0xFFF0", "srcIP", true},
		{"srcIP / 7", "srcIP", true},
		// Bare is finer than any proper coarsening.
		{"srcIP", "srcIP & 0xFFF0", false},
		// Division: x/b is a function of x/a iff a divides b.
		{"time / 180", "time / 60", true},
		{"time / 60", "time / 180", false},
		{"time / 90", "time / 60", false},
		// Masks: keep a subset of bits.
		{"ip & 0xFF00", "ip & 0xFFF0", true},
		{"ip & 0xFFF0", "ip & 0xFF00", false},
		{"ip & 0x0F", "ip & 0xF0", false},
		// Shifts.
		{"ip >> 8", "ip >> 4", true},
		{"ip >> 4", "ip >> 8", false},
		// Power-of-two division is a shift.
		{"time / 128", "time / 64", true},
		{"time / 64", "time >> 6", true},
		{"time >> 7", "time / 64", true},
		// Mask/shift interplay: x>>8 keeps bits 8.., so it is a
		// function of x & 0xFFFFFFFFFFFFFF00.
		{"ip >> 8", "ip & 0xFFFFFFFFFFFFFF00", true},
		{"ip & 0xF00", "ip >> 8", true},
		{"ip & 0xF0", "ip >> 8", false},
		// Containment: (time/60)/2 is a function of time/60.
		{"(time / 60) / 2", "time / 60", true},
		{"(time / 60) + 1", "time / 60", true},
		{"time / 60", "(time / 60) + 1", false},
		// Different attributes never relate.
		{"srcIP", "destIP", false},
		// Folded chains.
		{"(ip & 0xFFF0) & 0xFF00", "ip & 0xFFF0", true},
	}
	for _, c := range cases {
		e, g := MustParseElem(c.e), MustParseElem(c.g)
		if got := IsCoarseningOf(e, g); got != c.want {
			t.Errorf("IsCoarseningOf(%s, %s) = %v, want %v", c.e, c.g, got, c.want)
		}
	}
}

func TestReconcileElems(t *testing.T) {
	cases := []struct {
		a, b string
		want string // "" means no reconciliation
	}{
		{"srcIP", "srcIP", "srcIP"},
		{"srcIP", "srcIP & 0xFFF0", "srcIP & 0xFFF0"},
		{"srcIP & 0xFFF0", "srcIP", "srcIP & 0xFFF0"},
		// The paper's Section 4.1 example: time/60 with time/90 ->
		// time/180.
		{"time / 60", "time / 90", "time / 180"},
		{"ip & 0xFF00", "ip & 0xFFF0", "ip & 0xFF00"},
		{"ip & 0x0F", "ip & 0xF0", ""},
		{"ip >> 4", "ip >> 8", "ip >> 8"},
		{"ip & 0xFF0", "ip >> 8", "ip & 3840"},   // 0xF00
		{"time / 60", "time >> 6", "time / 960"}, // lcm(60, 64)
		{"time / 60", "ip & 0xF0", ""},           // different attributes
		{"srcIP", "destIP", ""},
		{"(time / 60) / 3", "time / 60", "(time / 60) / 3"},
	}
	for _, c := range cases {
		a, b := MustParseElem(c.a), MustParseElem(c.b)
		got, ok := ReconcileElems(a, b)
		if c.want == "" {
			if ok {
				t.Errorf("ReconcileElems(%s, %s) = %s, want failure", c.a, c.b, got)
			}
			continue
		}
		if !ok {
			t.Errorf("ReconcileElems(%s, %s) failed, want %s", c.a, c.b, c.want)
			continue
		}
		want := MustParseElem(c.want)
		if !exprEqualNoQual(got.Expr, want.Expr) {
			t.Errorf("ReconcileElems(%s, %s) = %s, want %s", c.a, c.b, got, c.want)
		}
	}
}

func TestModuloLattice(t *testing.T) {
	coarsenings := []struct {
		e, g string
		want bool
	}{
		{"x % 4", "x % 12", true},   // 4 divides 12
		{"x % 12", "x % 4", false},  // 12 does not divide 4
		{"x % 5", "x", true},        // anything coarsens bare
		{"x % 8", "x & 0x7", true},  // low 3 bits determine x%8
		{"x % 8", "x & 0xF", true},  // and any superset of them
		{"x % 8", "x & 0xE", false}, // bit 0 missing
		{"x & 0x3", "x % 8", true},  // mask inside the low bits of 2^3
		{"x & 0x9", "x % 8", false}, // bit 3 outside
		{"x % 6", "x & 0x7", false}, // non-power-of-two mod
		{"(x % 12) % 4", "x % 12", true},
	}
	for _, c := range coarsenings {
		e, g := MustParseElem(c.e), MustParseElem(c.g)
		if got := IsCoarseningOf(e, g); got != c.want {
			t.Errorf("IsCoarseningOf(%s, %s) = %v, want %v", c.e, c.g, got, c.want)
		}
	}
	// Reconciliation via gcd.
	r, ok := ReconcileElems(MustParseElem("x % 12"), MustParseElem("x % 8"))
	if !ok || r.String() != "x % 4" {
		t.Errorf("reconcile(x%%12, x%%8) = %v ok=%v, want x %% 4", r, ok)
	}
	if _, ok := ReconcileElems(MustParseElem("x % 9"), MustParseElem("x % 8")); ok {
		t.Error("gcd 1 must not reconcile")
	}
}

func TestModuloGcdProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		ma, mb := uint64(a%300)+2, uint64(b%300)+2
		ea := MustParseElem("x % " + uitoa(ma))
		eb := MustParseElem("x % " + uitoa(mb))
		r, ok := ReconcileElems(ea, eb)
		if gcd(ma, mb) <= 1 {
			return !ok
		}
		return ok && IsCoarseningOf(r, ea) && IsCoarseningOf(r, eb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReconcileElemsSymmetricProperty(t *testing.T) {
	// Reconciliation over the div sub-lattice always succeeds (lcm),
	// is symmetric up to expression equality, and the result is a
	// coarsening of both inputs.
	f := func(a, b uint16) bool {
		da, db := uint64(a%500)+1, uint64(b%500)+1
		ea := MustParseElem("time / " + uitoa(da))
		eb := MustParseElem("time / " + uitoa(db))
		r1, ok1 := ReconcileElems(ea, eb)
		r2, ok2 := ReconcileElems(eb, ea)
		if !ok1 || !ok2 {
			return false
		}
		return exprEqualNoQual(normalizeAttrRef(r1.Expr), normalizeAttrRef(r2.Expr)) == exprEqualNoQual(normalizeAttrRef(r2.Expr), normalizeAttrRef(r1.Expr)) &&
			IsCoarseningOf(r1, ea) && IsCoarseningOf(r1, eb) &&
			IsCoarseningOf(r2, ea) && IsCoarseningOf(r2, eb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReconcileMasksProperty(t *testing.T) {
	// For overlapping masks the reconciliation is the intersection and
	// coarsens both.
	f := func(m1, m2 uint32) bool {
		a := MustParseElem("ip & " + uitoa(uint64(m1)|1))
		b := MustParseElem("ip & " + uitoa(uint64(m2)|1))
		r, ok := ReconcileElems(a, b)
		return ok && IsCoarseningOf(r, a) && IsCoarseningOf(r, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCoarseningTransitiveProperty(t *testing.T) {
	// div-lattice transitivity: x/(ab) coarsens x/a, x/(abc) coarsens
	// x/(ab) and therefore x/a.
	f := func(a, b, c uint8) bool {
		da := uint64(a%30) + 1
		db := da * (uint64(b%30) + 1)
		dc := db * (uint64(c%30) + 1)
		e1 := MustParseElem("t / " + uitoa(da))
		e2 := MustParseElem("t / " + uitoa(db))
		e3 := MustParseElem("t / " + uitoa(dc))
		if !IsCoarseningOf(e2, e1) || !IsCoarseningOf(e3, e2) {
			return false
		}
		return IsCoarseningOf(e3, e1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseElemErrors(t *testing.T) {
	for _, src := range []string{"", "1 + 2", "srcIP + destIP", "(("} {
		if _, err := ParseElem(src); err == nil {
			t.Errorf("ParseElem(%q) should fail", src)
		}
	}
}

func TestElemString(t *testing.T) {
	e := MustParseElem("srcIP & 0xFFF0")
	if got := e.String(); got != "srcIP & 0xFFF0" {
		t.Errorf("String() = %q", got)
	}
}

func uitoa(u uint64) string {
	if u == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for u > 0 {
		i--
		buf[i] = byte('0' + u%10)
		u /= 10
	}
	return string(buf[i:])
}
