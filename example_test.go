package qap_test

import (
	"fmt"

	"qap"
)

// The end-to-end flow from the paper's Section 3.2 example: load the
// query set, infer each query's requirement, reconcile, and verify the
// recommendation.
func Example() {
	sys, err := qap.Load(qap.TCPSchemaDDL, qap.ComplexQuerySet)
	if err != nil {
		panic(err)
	}
	analysis, err := sys.Analyze(nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("recommended:", analysis.Best)
	for _, name := range []string{"flows", "heavy_flows", "flow_pairs"} {
		ok, _ := sys.Compatible(analysis.Best, name)
		fmt.Printf("%s compatible: %v\n", name, ok)
	}
	// Output:
	// recommended: (srcIP)
	// flows compatible: true
	// heavy_flows compatible: true
	// flow_pairs compatible: true
}

// Reconciling conflicting requirements (paper Section 4.1): the
// "least common denominator" of two partitioning sets.
func ExampleParseSet() {
	a := qap.MustParseSet("time/60, srcIP, destIP")
	b := qap.MustParseSet("time/90, srcIP & 0xFFF0")
	fmt.Println(qap.Reconcile(a, b))
	// Output:
	// (srcIP & 0xFFF0, time / 180)
}

// ExampleSystem_Requirements prints the inferred per-query
// partitioning requirements.
func ExampleSystem_Requirements() {
	sys := qap.MustLoad(qap.TCPSchemaDDL, `
query tcp_flows:
SELECT tb, srcIP, destIP, srcPort, destPort, COUNT(*), SUM(len)
FROM TCP
GROUP BY time/60 as tb, srcIP, destIP, srcPort, destPort

query flow_cnt:
SELECT tb, srcIP, destIP, count(*)
FROM tcp_flows
GROUP BY tb, srcIP, destIP`)
	reqs := sys.Requirements()
	fmt.Println("tcp_flows:", reqs["tcp_flows"].Set)
	fmt.Println("flow_cnt: ", reqs["flow_cnt"].Set)
	// Output:
	// tcp_flows: (destIP, destPort, srcIP, srcPort)
	// flow_cnt:  (destIP, srcIP)
}
