package schema

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads stream DDL in the compact form used throughout the paper:
//
//	PKT(time increasing, srcIP, destIP, len)
//	TCP(time uint increasing, srcIP uint, destIP uint,
//	    srcPort uint, destPort uint, len uint, flags uint)
//
// Each definition is NAME(attr [, attr]...) where attr is
// "name [type] [increasing|decreasing]"; the type defaults to uint,
// matching network-monitoring schemas. Definitions are separated by
// newlines or semicolons; '#' and '--' start line comments.
func Parse(src string) (*Catalog, error) {
	c := NewCatalog()
	p := &ddlParser{src: src}
	for {
		p.skipSpaceAndComments()
		if p.eof() {
			return c, nil
		}
		s, err := p.parseStream()
		if err != nil {
			return nil, err
		}
		if err := c.Add(s); err != nil {
			return nil, err
		}
	}
}

// MustParse is Parse that panics on error; for tests and examples with
// constant DDL.
func MustParse(src string) *Catalog {
	c, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return c
}

type ddlParser struct {
	src  string
	pos  int
	line int
}

func (p *ddlParser) eof() bool { return p.pos >= len(p.src) }

func (p *ddlParser) errf(format string, args ...any) error {
	return fmt.Errorf("schema: line %d: %s", p.line+1, fmt.Sprintf(format, args...))
}

func (p *ddlParser) skipSpaceAndComments() {
	for !p.eof() {
		ch := p.src[p.pos]
		switch {
		case ch == '\n':
			p.line++
			p.pos++
		case ch == ' ' || ch == '\t' || ch == '\r' || ch == ';':
			p.pos++
		case ch == '#':
			p.skipLine()
		case ch == '-' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '-':
			p.skipLine()
		default:
			return
		}
	}
}

func (p *ddlParser) skipLine() {
	for !p.eof() && p.src[p.pos] != '\n' {
		p.pos++
	}
}

func (p *ddlParser) ident() string {
	start := p.pos
	for !p.eof() {
		ch := rune(p.src[p.pos])
		if unicode.IsLetter(ch) || unicode.IsDigit(ch) || ch == '_' {
			p.pos++
			continue
		}
		break
	}
	return p.src[start:p.pos]
}

func (p *ddlParser) parseStream() (*Stream, error) {
	name := p.ident()
	if name == "" {
		return nil, p.errf("expected stream name, found %q", p.peekContext())
	}
	p.skipSpaceAndComments()
	if p.eof() || p.src[p.pos] != '(' {
		return nil, p.errf("stream %s: expected '('", name)
	}
	p.pos++
	var attrs []Attribute
	for {
		p.skipSpaceAndComments()
		if p.eof() {
			return nil, p.errf("stream %s: unexpected end of input in attribute list", name)
		}
		if p.src[p.pos] == ')' {
			p.pos++
			break
		}
		attr, err := p.parseAttr(name)
		if err != nil {
			return nil, err
		}
		attrs = append(attrs, attr)
		p.skipSpaceAndComments()
		if !p.eof() && p.src[p.pos] == ',' {
			p.pos++
		}
	}
	if len(attrs) == 0 {
		return nil, p.errf("stream %s: must declare at least one attribute", name)
	}
	return NewStream(name, attrs)
}

func (p *ddlParser) parseAttr(stream string) (Attribute, error) {
	attrName := p.ident()
	if attrName == "" {
		return Attribute{}, p.errf("stream %s: expected attribute name, found %q", stream, p.peekContext())
	}
	attr := Attribute{Name: attrName, Type: TUint}
	for {
		p.skipSpaceAndComments()
		save := p.pos
		word := strings.ToLower(p.ident())
		switch word {
		case "":
			return attr, nil
		case "uint":
			attr.Type = TUint
		case "int":
			attr.Type = TInt
		case "float":
			attr.Type = TFloat
		case "bool":
			attr.Type = TBool
		case "string":
			attr.Type = TString
		case "increasing":
			attr.Order = Increasing
		case "decreasing":
			attr.Order = Decreasing
		default:
			p.pos = save
			return Attribute{}, p.errf("stream %s: attribute %s: unknown modifier %q", stream, attrName, word)
		}
	}
}

func (p *ddlParser) peekContext() string {
	end := p.pos + 12
	if end > len(p.src) {
		end = len(p.src)
	}
	return p.src[p.pos:end]
}
