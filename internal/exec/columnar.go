package exec

// Columnar batch representation. A ColBatch holds one window of tuples
// as per-column typed vectors (uint64 payload words plus a string
// spine and an optional validity bitmap), so batched operators can run
// compiled kernels over dense column slices instead of per-tuple
// interface dispatch. Pivots at the engine boundary (AppendRows /
// SetFromRows) keep the wire codec, the replay merge, and every
// row-oriented operator untouched: a consumer that does not implement
// ColConsumer transparently receives the pivoted rows via PushColsAll.
//
// Ownership contract (stricter than Batch): a ColBatch passed to
// PushCols, and every slice it references, is valid ONLY for the
// duration of the call. Consumers must not retain or mutate it; a
// consumer that needs the data afterwards must pivot (AppendRows) or
// copy. This is what lets producers recycle column slabs
// unconditionally, with no plan-shape gating like scanTuplesSevered.

import (
	"math"

	"qap/internal/sqlval"
)

// ColVec is a single column of a ColBatch: a uniform value kind, a
// payload word per row, and an optional validity bitmap.
//
// Payload encoding by Kind (one uint64 word per row in U64):
//
//	KindUint   raw value               (Value == sqlval.Uint(w))
//	KindInt    two's complement bits   (Value == sqlval.Int(int64(w)))
//	KindFloat  IEEE-754 bits           (Value == sqlval.Float(math.Float64frombits(w)))
//	KindBool   0 or 1                  (Value == sqlval.Bool(w != 0))
//	KindString Str[i] holds the value; U64 is unused
//	KindNull   every row is NULL; U64/Str unused
//
// Valid is a little-endian bitmap (bit i of word i/64 set = row i is
// non-NULL). len(Valid) == 0 means every row is valid. NULL rows keep
// a zero payload word so vectors stay densely indexed.
type ColVec struct {
	Kind  sqlval.Kind
	U64   []uint64
	Str   []string
	Valid []uint64
}

// IsValid reports whether row i is non-NULL.
func (v *ColVec) IsValid(i int) bool {
	return len(v.Valid) == 0 || v.Valid[i>>6]&(1<<uint(i&63)) != 0
}

// Value reconstructs row i as a sqlval.Value. The reconstruction is
// exact: pivoting a column in and out preserves kind and payload bits
// (including float NaN payloads).
func (v *ColVec) Value(i int) sqlval.Value {
	if !v.IsValid(i) {
		return sqlval.Null
	}
	switch v.Kind {
	case sqlval.KindUint:
		return sqlval.Uint(v.U64[i])
	case sqlval.KindInt:
		return sqlval.Int(int64(v.U64[i]))
	case sqlval.KindFloat:
		return sqlval.Float(math.Float64frombits(v.U64[i]))
	case sqlval.KindBool:
		return sqlval.Bool(v.U64[i] != 0)
	case sqlval.KindString:
		return sqlval.Str(v.Str[i])
	default:
		return sqlval.Null
	}
}

// ColBatch is a dense column-oriented batch: Len rows across
// len(Cols) columns. There is no selection vector at operator
// boundaries — filters compact before forwarding — so every consumer
// sees rows 0..Len-1 of every column.
type ColBatch struct {
	Cols []ColVec
	Len  int
}

// AllUint reports whether every column is KindUint with no NULLs.
// This is the precondition for the compiled uint kernels (ColExpr.U /
// ColExpr.Truth): network traces pivot to all-uint batches, which is
// the engine hot path.
func (cb *ColBatch) AllUint() bool {
	for i := range cb.Cols {
		c := &cb.Cols[i]
		if c.Kind != sqlval.KindUint || len(c.Valid) != 0 {
			return false
		}
	}
	return true
}

// Reset truncates the batch to zero rows, keeping column capacity so
// producers can refill without allocating.
func (cb *ColBatch) Reset() {
	for i := range cb.Cols {
		c := &cb.Cols[i]
		c.U64 = c.U64[:0]
		c.Str = c.Str[:0]
		c.Valid = c.Valid[:0]
	}
	cb.Len = 0
}

// Slice points dst at rows [lo, hi) of cb without copying payloads.
// dst shares cb's backing arrays, so it follows the same
// only-during-the-call lifetime. Only all-valid columns can be sliced
// (the bitmap is not word-aligned at arbitrary offsets); producers
// that chunk batches only ever build all-valid columns.
func (cb *ColBatch) Slice(lo, hi int, dst *ColBatch) {
	if cap(dst.Cols) < len(cb.Cols) {
		dst.Cols = make([]ColVec, len(cb.Cols))
	}
	dst.Cols = dst.Cols[:len(cb.Cols)]
	for i := range cb.Cols {
		c := &cb.Cols[i]
		if len(c.Valid) != 0 {
			panic("exec: ColBatch.Slice on column with validity bitmap")
		}
		d := &dst.Cols[i]
		d.Kind = c.Kind
		d.Valid = nil
		d.U64 = nil
		d.Str = nil
		if c.U64 != nil {
			d.U64 = c.U64[lo:hi]
		}
		if c.Str != nil {
			d.Str = c.Str[lo:hi]
		}
	}
	dst.Len = hi - lo
}

// RowWireSize mirrors Tuple.WireSize for row i without materializing
// the tuple: 8 bytes of framing plus each value's wire size.
func (cb *ColBatch) RowWireSize(i int) int {
	n := 8
	for c := range cb.Cols {
		v := &cb.Cols[c]
		switch {
		case !v.IsValid(i) || v.Kind == sqlval.KindNull:
			n++
		case v.Kind == sqlval.KindBool:
			n += 2
		case v.Kind == sqlval.KindString:
			n += 3 + len(v.Str[i])
		default:
			n += 9
		}
	}
	return n
}

// AppendRows pivots the batch into durable row tuples appended to
// dst. All tuples share one backing array (a single allocation), and
// unlike the source ColBatch they follow the ordinary tuple contract:
// immutable and retainable forever.
//
//qap:hot
func (cb *ColBatch) AppendRows(dst Batch) Batch {
	n, w := cb.Len, len(cb.Cols)
	if n == 0 {
		return dst
	}
	//qap:allow hotalloc -- one backing array per pivoted batch, amortized over its rows
	backing := make([]sqlval.Value, n*w)
	for c := 0; c < w; c++ {
		v := &cb.Cols[c]
		for r := 0; r < n; r++ {
			backing[r*w+c] = v.Value(r)
		}
	}
	for r := 0; r < n; r++ {
		dst = append(dst, Tuple(backing[r*w:(r+1)*w:(r+1)*w]))
	}
	return dst
}

// SetFromRows rebuilds cb from a row batch, reusing column capacity.
// It returns false — leaving cb unspecified — when the rows cannot be
// represented columnar: ragged widths or a column mixing value kinds.
// NULLs are fine (they set the validity bitmap); an all-NULL column
// becomes KindNull.
func (cb *ColBatch) SetFromRows(b Batch) bool {
	n := len(b)
	if n == 0 {
		cb.Reset()
		cb.Len = 0
		return true
	}
	w := len(b[0])
	for _, t := range b {
		if len(t) != w {
			return false
		}
	}
	if cap(cb.Cols) < w {
		cb.Cols = make([]ColVec, w)
	}
	cb.Cols = cb.Cols[:w]
	for c := 0; c < w; c++ {
		v := &cb.Cols[c]
		kind := sqlval.KindNull
		nulls := false
		for r := 0; r < n; r++ {
			val := b[r][c]
			if val.IsNull() {
				nulls = true
				continue
			}
			k := val.Kind()
			if kind == sqlval.KindNull {
				kind = k
				continue
			}
			if k != kind {
				return false
			}
		}
		v.Kind = kind
		v.U64 = v.U64[:0]
		v.Str = v.Str[:0]
		v.Valid = v.Valid[:0]
		switch kind {
		case sqlval.KindNull:
		case sqlval.KindString:
			for r := 0; r < n; r++ {
				s, _ := b[r][c].AsString()
				v.Str = append(v.Str, s)
			}
		case sqlval.KindFloat:
			for r := 0; r < n; r++ {
				f, ok := b[r][c].AsFloat()
				if !ok {
					f = 0
				}
				v.U64 = append(v.U64, math.Float64bits(f))
			}
		default:
			// Uint, Int, and Bool all round-trip bit-exactly
			// through AsUint (NULL rows contribute a zero word).
			for r := 0; r < n; r++ {
				u, _ := b[r][c].AsUint()
				v.U64 = append(v.U64, u)
			}
		}
		if nulls || kind == sqlval.KindNull {
			words := (n + 63) >> 6
			if cap(v.Valid) < words {
				v.Valid = make([]uint64, words)
			}
			v.Valid = v.Valid[:words]
			for i := range v.Valid {
				v.Valid[i] = 0
			}
			for r := 0; r < n; r++ {
				if !b[r][c].IsNull() {
					v.Valid[r>>6] |= 1 << uint(r&63)
				}
			}
		}
	}
	cb.Len = n
	return true
}

// ColConsumer is implemented by consumers that accept columnar
// batches natively. PushCols(cb) must be observably identical to
// PushBatch of the pivoted rows: same downstream effects, same
// counters, same output bytes. The batch and everything it references
// are owned by the producer and valid only during the call.
type ColConsumer interface {
	Consumer
	PushCols(cb *ColBatch)
}

// PushColsAll delivers a columnar batch to any consumer: natively
// when it implements ColConsumer, otherwise by pivoting to durable
// rows and falling back to PushAll. Empty batches are dropped, like
// PushAll.
//
//qap:hot
func PushColsAll(c Consumer, cb *ColBatch) {
	if cb.Len == 0 {
		return
	}
	if cc, ok := c.(ColConsumer); ok {
		cc.PushCols(cb)
		return
	}
	b := cb.AppendRows(GetBatch())
	PushAll(c, b)
	PutBatch(b)
}

// growUints returns buf with length n, reusing capacity when it can.
//
//qap:hot
func growUints(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		//qap:allow hotalloc -- scratch growth, amortized across batches
		return make([]uint64, n)
	}
	return buf[:n]
}

// Discard drops columnar batches outright.
func (Discard) PushCols(*ColBatch) {}

// PushCols pivots and retains the rows (a Collector outlives the
// batch, so it must own durable tuples).
func (c *Collector) PushCols(cb *ColBatch) {
	c.Rows = cb.AppendRows(c.Rows)
}

// PushCols pivots once and fans the shared durable rows out to every
// consumer, mirroring the scalar PushBatch sharing.
func (t *Tee) PushCols(cb *ColBatch) {
	if cb.Len == 0 {
		return
	}
	b := cb.AppendRows(GetBatch())
	for _, o := range t.Outs {
		PushAll(o, b)
	}
	PutBatch(b)
}
