package optimizer

import (
	"fmt"

	"qap/internal/plan"
)

// BuildOperatorPlacement constructs the query-plan-partitioning
// baseline the paper argues against (Sections 1-2, citing Borealis):
// instead of partitioning the data, each query operator is placed on
// its own host (round-robin over the cluster) and whole streams are
// forwarded between hosts. Every operator still sees its complete
// input, so an operator too heavy for one machine — any low-level
// aggregation at line rate — remains the bottleneck no matter how many
// hosts are added, and the inter-host forwarding adds load instead of
// removing it.
func BuildOperatorPlacement(g *plan.Graph, opts Options) (*Plan, error) {
	if opts.Hosts <= 0 {
		return nil, fmt.Errorf("optimizer: Hosts must be positive, got %d", opts.Hosts)
	}
	if opts.PartitionsPerHost <= 0 {
		return nil, fmt.Errorf("optimizer: PartitionsPerHost must be positive, got %d", opts.PartitionsPerHost)
	}
	b := &builder{
		plan: &Plan{
			Outputs:           make(map[string]*Op),
			Hosts:             opts.Hosts,
			Partitions:        opts.Hosts * opts.PartitionsPerHost,
			PartitionsPerHost: opts.PartitionsPerHost,
			AggregatorHost:    opts.AggregatorHost,
			Graph:             g,
		},
		opts: opts,
		impl: make(map[*plan.Node]*implInfo),
	}
	for _, src := range g.Sources() {
		b.buildScans(src)
	}
	// Assign each query node to a host round-robin; heavier nodes are
	// not special-cased, mirroring the "highly non-uniform resource
	// consumption" problem the paper describes.
	for i, n := range g.QueryNodes() {
		host := i % opts.Hosts
		in0 := b.centralizeOn(b.impl[n.Inputs[0]], host)
		var op *Op
		switch n.Kind {
		case plan.KindSelectProject:
			op = b.newOp(OpSelProj, host, -1, n)
			op.Inputs = []*Op{in0}
		case plan.KindAggregate:
			if n.WindowPanes > 1 {
				sub := b.newOp(OpAggSub, host, -1, n)
				sub.Inputs = []*Op{in0}
				op = b.newOp(OpWindow, host, -1, n)
				op.Inputs = []*Op{sub}
				break
			}
			op = b.newOp(OpAggregate, host, -1, n)
			op.Inputs = []*Op{in0}
		case plan.KindJoin:
			in1 := b.centralizeOn(b.impl[n.Inputs[1]], host)
			op = b.newOp(OpJoin, host, -1, n)
			op.Inputs = []*Op{in0, in1}
		default:
			return nil, fmt.Errorf("optimizer: unexpected node kind %v for %s", n.Kind, n.QueryName)
		}
		b.impl[n] = &implInfo{central: op}
	}
	for _, root := range g.Roots() {
		in := b.centralizeOn(b.impl[root], b.plan.AggregatorHost)
		out := b.newOp(OpOutput, b.plan.AggregatorHost, -1, root)
		out.Inputs = []*Op{in}
		b.plan.Outputs[root.QueryName] = out
	}
	return b.plan, nil
}

// centralizeOn returns an operator producing the node's complete
// stream on the given host, inserting a union over per-partition
// producers when needed.
func (b *builder) centralizeOn(info *implInfo, host int) *Op {
	if info.central != nil {
		return info.central
	}
	union := b.newOp(OpUnion, host, -1, nil)
	union.Inputs = append(union.Inputs, info.parts...)
	info.central = union
	return union
}
