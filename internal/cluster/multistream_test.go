package cluster

import (
	"testing"

	"qap/internal/core"
	"qap/internal/gsql"
	"qap/internal/netgen"
	"qap/internal/optimizer"
	"qap/internal/plan"
	"qap/internal/schema"
)

// twoStreamDDL declares the paper's Section 3.1 PKT1/PKT2 pair with
// the generator's column layout.
const twoStreamDDL = `
PKT1(time increasing, srcIP, destIP, srcPort, destPort, len, flags, seq)
PKT2(time increasing, srcIP, destIP, srcPort, destPort, len, flags, seq)`

// The Section 3.1 join: combine the lengths of packets with matching
// addresses in the same second.
const twoStreamJoin = `
query combined:
SELECT PKT1.time, PKT1.srcIP, PKT1.destIP, PKT1.len + PKT2.len AS lens
FROM PKT1 JOIN PKT2
WHERE PKT1.time = PKT2.time AND PKT1.srcIP = PKT2.srcIP AND PKT1.destIP = PKT2.destIP
  AND PKT1.seq = PKT2.seq AND PKT1.srcPort = PKT2.srcPort AND PKT1.destPort = PKT2.destPort`

func twoTraces(t testing.TB) (a, b *netgen.Trace) {
	t.Helper()
	cfg := netgen.DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 120, 300
	cfg.SrcHosts, cfg.DstHosts = 50, 30
	a = netgen.Generate(cfg)
	cfg.Seed = 2
	b = netgen.Generate(cfg)
	return a, b
}

func buildTwoStream(t testing.TB) *plan.Graph {
	t.Helper()
	g, err := plan.Build(schema.MustParse(twoStreamDDL), gsql.MustParseQuerySet(twoStreamJoin))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func runTwoStream(t testing.TB, g *plan.Graph, ps core.Set, o optimizer.Options, a, b *netgen.Trace) *Result {
	t.Helper()
	p, err := optimizer.Build(g, ps, o)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(p, DefaultCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunStreams(map[string][]netgen.Packet{
		"PKT1": a.Packets,
		"PKT2": b.Packets,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTwoStreamJoinEquivalence(t *testing.T) {
	g := buildTwoStream(t)
	a, b := twoTraces(t)
	want := runTwoStream(t, g, nil, optimizer.Options{Hosts: 1, PartitionsPerHost: 1}, a, b)
	if len(want.Outputs["combined"]) == 0 {
		t.Fatal("two-stream join found no matches; traces should overlap")
	}
	for _, cfg := range []struct {
		name string
		ps   core.Set
		o    optimizer.Options
	}{
		{"central-4hosts", nil, optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true}},
		{"partitioned", core.MustParseSet("srcIP, destIP"), optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true}},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			got := runTwoStream(t, g, cfg.ps, cfg.o, a, b)
			if len(got.Outputs["combined"]) != len(want.Outputs["combined"]) {
				t.Fatalf("row count %d, want %d", len(got.Outputs["combined"]), len(want.Outputs["combined"]))
			}
			wm := rowMultiset(want.Outputs["combined"])
			gm := rowMultiset(got.Outputs["combined"])
			for k, c := range wm {
				if gm[k] != c {
					t.Fatal("row multiset mismatch")
				}
			}
		})
	}
}

func TestTwoStreamJoinPushdown(t *testing.T) {
	// Under (srcIP, destIP), the join's per-partition copies pair each
	// PKT1 partition with the PKT2 partition of the same index, and
	// the splitter routes matching tuples of both streams to the same
	// partition (the shared-partitioning-set assumption).
	g := buildTwoStream(t)
	p := optimizer.MustBuild(g, core.MustParseSet("srcIP, destIP"),
		optimizer.Options{Hosts: 2, PartitionsPerHost: 2})
	joins := 0
	for _, op := range p.Ops {
		if op.Kind == optimizer.OpJoin {
			joins++
			if op.Inputs[0] == op.Inputs[1] {
				t.Error("two-stream join must read distinct scans")
			}
			if op.Inputs[0].Partition != op.Inputs[1].Partition {
				t.Error("pair-wise join must align partitions")
			}
		}
	}
	if joins != 4 {
		t.Errorf("joins = %d, want 4", joins)
	}
}

func TestRunStreamsRejectsUnordered(t *testing.T) {
	g := buildTwoStream(t)
	p := optimizer.MustBuild(g, nil, optimizer.Options{Hosts: 1, PartitionsPerHost: 1})
	r, err := New(p, DefaultCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunStreams(map[string][]netgen.Packet{
		"PKT1": {{Time: 5}, {Time: 3}},
	}); err == nil {
		t.Error("unordered trace should be rejected")
	}
	if _, err := r.RunStreams(map[string][]netgen.Packet{"NOPE": nil}); err == nil {
		t.Error("unknown stream should be rejected")
	}
}

func TestRunStreamsOneSideEmpty(t *testing.T) {
	g := buildTwoStream(t)
	a, _ := twoTraces(t)
	p := optimizer.MustBuild(g, nil, optimizer.Options{Hosts: 2, PartitionsPerHost: 2})
	r, err := New(p, DefaultCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunStreams(map[string][]netgen.Packet{"PKT1": a.Packets})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["combined"]) != 0 {
		t.Error("join with an empty side must emit nothing (inner join)")
	}
}
