// Package exec is the streaming execution engine: a push-based,
// tuple-at-a-time operator library with tumbling-window semantics
// (paper Section 3.1). Operators receive tuples and watermarks —
// guarantees that no tuple with a smaller base timestamp will arrive —
// and stateful operators (aggregation, join) use watermarks to close
// window epochs deterministically. The cluster simulator wires these
// operators according to the distributed plans the partition-aware
// optimizer produces.
package exec

import (
	"strings"

	"qap/internal/sqlval"
)

// Tuple is one row flowing between operators. Tuples are immutable
// once pushed: operators that need to retain them may keep references.
type Tuple []sqlval.Value

// WireSize is the simulated network size of the tuple in bytes: an
// 8-byte header plus each value's encoding.
func (t Tuple) WireSize() int {
	size := 8
	for _, v := range t {
		size += v.WireSize()
	}
	return size
}

// String renders the tuple for test output and tools.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Key encodes a list of values into a string usable as a hash-table
// key; values that compare equal encode identically.
func Key(vals []sqlval.Value) string {
	return string(AppendKey(nil, vals))
}

// AppendKey appends the key encoding of vals to dst and returns the
// extended slice. It is the allocation-free form of Key: operators on
// the batched hot path encode into a reused buffer and probe their
// hash tables with string(buf), which Go compiles without copying.
func AppendKey(dst []byte, vals []sqlval.Value) []byte {
	for _, v := range vals {
		dst = appendKeyValue(dst, v)
	}
	return dst
}

func appendKeyValue(b []byte, v sqlval.Value) []byte {
	switch v.Kind() {
	case sqlval.KindNull:
		return append(b, 0)
	case sqlval.KindString:
		s, _ := v.AsString()
		b = append(b, 1)
		b = appendU64(b, uint64(len(s)))
		return append(b, s...)
	case sqlval.KindFloat:
		f, _ := v.AsFloat()
		if f == float64(int64(f)) {
			// Integral floats encode like integers so cross-kind
			// equal values share a key.
			return appendIntKey(b, int64(f))
		}
		b = append(b, 3)
		return appendU64(b, v.Hash())
	default:
		i, _ := v.AsInt()
		if v.Kind() == sqlval.KindUint {
			u, _ := v.AsUint()
			if u > 1<<63-1 {
				b = append(b, 4)
				return appendU64(b, u)
			}
		}
		return appendIntKey(b, i)
	}
}

func appendIntKey(b []byte, i int64) []byte {
	b = append(b, 2)
	return appendU64(b, uint64(i))
}

func appendU64(b []byte, u uint64) []byte {
	return append(b,
		byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
		byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
}

// Consumer is the downstream interface between operators.
//
// Push delivers one tuple. Advance(wm) promises that every future
// tuple derives from base events with timestamp >= wm; stateful
// operators flush completed epochs. Flush signals end of stream.
// Drivers must deliver Advance and Flush to operators in topological
// order so that tuples emitted by an upstream flush arrive downstream
// before the downstream operator's own Advance/Flush.
type Consumer interface {
	Push(t Tuple)
	Advance(wm uint64)
	Flush()
}

// Discard is a Consumer that drops everything.
type Discard struct{}

// Push implements Consumer.
func (Discard) Push(Tuple) {}

// Advance implements Consumer.
func (Discard) Advance(uint64) {}

// Flush implements Consumer.
func (Discard) Flush() {}

// Collector accumulates every tuple it receives; it is the terminal
// sink for query roots and for tests.
type Collector struct {
	Rows    []Tuple
	Flushed bool
}

// Push implements Consumer.
func (c *Collector) Push(t Tuple) { c.Rows = append(c.Rows, t) }

// Advance implements Consumer.
func (c *Collector) Advance(uint64) {}

// Flush implements Consumer.
func (c *Collector) Flush() { c.Flushed = true }

// Tee duplicates its input to several consumers, preserving order.
type Tee struct {
	Outs []Consumer
}

// Push implements Consumer.
func (t *Tee) Push(tp Tuple) {
	for _, o := range t.Outs {
		o.Push(tp)
	}
}

// Advance implements Consumer.
func (t *Tee) Advance(wm uint64) {
	for _, o := range t.Outs {
		o.Advance(wm)
	}
}

// Flush implements Consumer.
func (t *Tee) Flush() {
	for _, o := range t.Outs {
		o.Flush()
	}
}
