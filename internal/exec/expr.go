package exec

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"qap/internal/gsql"
	"qap/internal/sqlval"
)

// EvalFunc evaluates a compiled expression against a tuple.
type EvalFunc func(Tuple) sqlval.Value

// Resolver maps a column reference to its position in the input tuple.
type Resolver func(*gsql.ColumnRef) (int, error)

// Params supplies values for #NAME# placeholders at plan time.
type Params map[string]sqlval.Value

// Get looks up a parameter case-insensitively.
func (p Params) Get(name string) (sqlval.Value, bool) {
	if p == nil {
		return sqlval.Null, false
	}
	if v, ok := p[name]; ok {
		return v, true
	}
	// Case-insensitive fallback over sorted keys: two keys that fold
	// to the same name must resolve identically on every run.
	keys := make([]string, 0, len(p))
	for k := range p { //qap:allow maprange -- keys collected then sorted below
		if strings.EqualFold(k, name) {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return sqlval.Null, false
	}
	sort.Strings(keys)
	return p[keys[0]], true
}

// ColsResolver builds a Resolver over a list of column names with an
// optional binding qualifier.
func ColsResolver(binding string, names []string) Resolver {
	return func(ref *gsql.ColumnRef) (int, error) {
		if ref.Qualifier != "" && binding != "" && !strings.EqualFold(ref.Qualifier, binding) {
			return 0, fmt.Errorf("exec: unknown qualifier %q", ref.Qualifier)
		}
		for i, n := range names {
			if strings.EqualFold(n, ref.Name) {
				return i, nil
			}
		}
		return 0, fmt.Errorf("exec: unknown column %q", ref.Name)
	}
}

// Compile translates an expression into an evaluation function.
// Aggregate calls are rejected: callers extract them first (the plan
// builder already rewrote aggregate expressions into references).
func Compile(e gsql.Expr, resolve Resolver, params Params) (EvalFunc, error) {
	switch t := e.(type) {
	case *gsql.ColumnRef:
		idx, err := resolve(t)
		if err != nil {
			return nil, err
		}
		return func(tp Tuple) sqlval.Value { return tp[idx] }, nil
	case *gsql.NumberLit:
		var v sqlval.Value
		if t.IsFloat {
			v = sqlval.Float(t.F)
		} else {
			v = sqlval.Uint(t.U)
		}
		return func(Tuple) sqlval.Value { return v }, nil
	case *gsql.StringLit:
		v := sqlval.Str(t.S)
		return func(Tuple) sqlval.Value { return v }, nil
	case *gsql.ParamRef:
		v, ok := params.Get(t.Name)
		if !ok {
			return nil, fmt.Errorf("exec: unbound parameter #%s#", t.Name)
		}
		return func(Tuple) sqlval.Value { return v }, nil
	case *gsql.Unary:
		x, err := Compile(t.X, resolve, params)
		if err != nil {
			return nil, err
		}
		op := t.Op
		return func(tp Tuple) sqlval.Value { return evalUnary(op, x(tp)) }, nil
	case *gsql.Binary:
		l, err := Compile(t.L, resolve, params)
		if err != nil {
			return nil, err
		}
		r, err := Compile(t.R, resolve, params)
		if err != nil {
			return nil, err
		}
		op := t.Op
		return func(tp Tuple) sqlval.Value { return evalBinary(op, l(tp), r(tp)) }, nil
	case *gsql.FuncCall:
		if gsql.IsAggregateName(t.Name) {
			return nil, fmt.Errorf("exec: aggregate %s cannot be compiled as a scalar", t.Name)
		}
		if strings.EqualFold(t.Name, "ABS") && len(t.Args) == 1 {
			x, err := Compile(t.Args[0], resolve, params)
			if err != nil {
				return nil, err
			}
			return func(tp Tuple) sqlval.Value { return evalAbs(x(tp)) }, nil
		}
		if strings.EqualFold(t.Name, "SQRT") && len(t.Args) == 1 {
			x, err := Compile(t.Args[0], resolve, params)
			if err != nil {
				return nil, err
			}
			return func(tp Tuple) sqlval.Value { return evalSqrt(x(tp)) }, nil
		}
		return nil, fmt.Errorf("exec: unknown function %s", t.Name)
	default:
		return nil, fmt.Errorf("exec: unsupported expression %T", e)
	}
}

// MustCompile is Compile that panics on error, for tests.
func MustCompile(e gsql.Expr, resolve Resolver, params Params) EvalFunc {
	f, err := Compile(e, resolve, params)
	if err != nil {
		panic(err)
	}
	return f
}

// CompileAll compiles a list of expressions.
func CompileAll(exprs []gsql.Expr, resolve Resolver, params Params) ([]EvalFunc, error) {
	out := make([]EvalFunc, len(exprs))
	for i, e := range exprs {
		f, err := Compile(e, resolve, params)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

func evalUnary(op gsql.UnaryOp, v sqlval.Value) sqlval.Value {
	if v.IsNull() {
		if op == gsql.OpNot {
			return sqlval.Bool(true) // NOT NULL-as-false
		}
		return sqlval.Null
	}
	switch op {
	case gsql.OpNeg:
		switch v.Kind() {
		case sqlval.KindFloat:
			f, _ := v.AsFloat()
			return sqlval.Float(-f)
		default:
			i, _ := v.AsInt()
			return sqlval.Int(-i)
		}
	case gsql.OpBitNot:
		u, ok := v.AsUint()
		if !ok {
			return sqlval.Null
		}
		return sqlval.Uint(^u)
	case gsql.OpNot:
		return sqlval.Bool(!v.AsBool())
	default:
		return sqlval.Null
	}
}

func evalBinary(op gsql.BinOp, l, r sqlval.Value) sqlval.Value {
	switch op {
	case gsql.OpAnd:
		return sqlval.Bool(l.AsBool() && r.AsBool())
	case gsql.OpOr:
		return sqlval.Bool(l.AsBool() || r.AsBool())
	}
	if l.IsNull() || r.IsNull() {
		if op == gsql.OpEq || op == gsql.OpNeq || op == gsql.OpLt ||
			op == gsql.OpLe || op == gsql.OpGt || op == gsql.OpGe {
			return sqlval.Bool(false) // SQL: comparisons with NULL are not true
		}
		return sqlval.Null
	}
	switch op {
	case gsql.OpEq:
		return sqlval.Bool(l.Equal(r))
	case gsql.OpNeq:
		return sqlval.Bool(!l.Equal(r))
	case gsql.OpLt:
		return sqlval.Bool(l.Compare(r) < 0)
	case gsql.OpLe:
		return sqlval.Bool(l.Compare(r) <= 0)
	case gsql.OpGt:
		return sqlval.Bool(l.Compare(r) > 0)
	case gsql.OpGe:
		return sqlval.Bool(l.Compare(r) >= 0)
	}
	// Arithmetic and bit operations.
	if l.Kind() == sqlval.KindFloat || r.Kind() == sqlval.KindFloat {
		lf, ok1 := l.AsFloat()
		rf, ok2 := r.AsFloat()
		if !ok1 || !ok2 {
			return sqlval.Null
		}
		switch op {
		case gsql.OpAdd:
			return sqlval.Float(lf + rf)
		case gsql.OpSub:
			return sqlval.Float(lf - rf)
		case gsql.OpMul:
			return sqlval.Float(lf * rf)
		case gsql.OpDiv:
			if rf == 0 {
				return sqlval.Null
			}
			return sqlval.Float(lf / rf)
		default:
			return sqlval.Null
		}
	}
	if l.Kind() == sqlval.KindInt || r.Kind() == sqlval.KindInt {
		li, ok1 := l.AsInt()
		ri, ok2 := r.AsInt()
		if !ok1 || !ok2 {
			return sqlval.Null
		}
		return evalIntOp(op, li, ri)
	}
	lu, ok1 := l.AsUint()
	ru, ok2 := r.AsUint()
	if !ok1 || !ok2 {
		return sqlval.Null
	}
	return evalUintOp(op, lu, ru)
}

func evalIntOp(op gsql.BinOp, l, r int64) sqlval.Value {
	switch op {
	case gsql.OpAdd:
		return sqlval.Int(l + r)
	case gsql.OpSub:
		return sqlval.Int(l - r)
	case gsql.OpMul:
		return sqlval.Int(l * r)
	case gsql.OpDiv:
		if r == 0 {
			return sqlval.Null
		}
		return sqlval.Int(l / r)
	case gsql.OpMod:
		if r == 0 {
			return sqlval.Null
		}
		return sqlval.Int(l % r)
	case gsql.OpBitAnd:
		return sqlval.Int(l & r)
	case gsql.OpBitOr:
		return sqlval.Int(l | r)
	case gsql.OpBitXor:
		return sqlval.Int(l ^ r)
	case gsql.OpShl:
		return sqlval.Int(l << uint(r&63))
	case gsql.OpShr:
		return sqlval.Int(l >> uint(r&63))
	default:
		return sqlval.Null
	}
}

func evalUintOp(op gsql.BinOp, l, r uint64) sqlval.Value {
	switch op {
	case gsql.OpAdd:
		return sqlval.Uint(l + r)
	case gsql.OpSub:
		if r > l {
			return sqlval.Int(int64(l) - int64(r))
		}
		return sqlval.Uint(l - r)
	case gsql.OpMul:
		return sqlval.Uint(l * r)
	case gsql.OpDiv:
		if r == 0 {
			return sqlval.Null
		}
		return sqlval.Uint(l / r)
	case gsql.OpMod:
		if r == 0 {
			return sqlval.Null
		}
		return sqlval.Uint(l % r)
	case gsql.OpBitAnd:
		return sqlval.Uint(l & r)
	case gsql.OpBitOr:
		return sqlval.Uint(l | r)
	case gsql.OpBitXor:
		return sqlval.Uint(l ^ r)
	case gsql.OpShl:
		return sqlval.Uint(l << (r & 63))
	case gsql.OpShr:
		return sqlval.Uint(l >> (r & 63))
	default:
		return sqlval.Null
	}
}

func evalSqrt(v sqlval.Value) sqlval.Value {
	f, ok := v.AsFloat()
	if !ok || f < 0 {
		return sqlval.Null
	}
	return sqlval.Float(math.Sqrt(f))
}

func evalAbs(v sqlval.Value) sqlval.Value {
	switch v.Kind() {
	case sqlval.KindFloat:
		f, _ := v.AsFloat()
		if f < 0 {
			f = -f
		}
		return sqlval.Float(f)
	case sqlval.KindInt:
		i, _ := v.AsInt()
		if i < 0 {
			i = -i
		}
		return sqlval.Int(i)
	case sqlval.KindUint:
		return v
	default:
		return sqlval.Null
	}
}
