package core

import (
	"strings"
	"testing"
)

const twoStreamDDL = `
TCP(time increasing, srcIP, destIP, srcPort, destPort, len, flags, seq)
DNS(ts increasing, clientIP, server, qtype, rcode)`

func TestPerStreamIndependentQueries(t *testing.T) {
	// Two streams with disjoint query groups: the shared-set
	// assumption forces an empty reconciliation (srcIP and clientIP
	// never reconcile), while the per-stream analysis satisfies both.
	g := buildGraph(t, twoStreamDDL, `
query tcp_flows:
SELECT tb, srcIP, destIP, COUNT(*) FROM TCP GROUP BY time/60 AS tb, srcIP, destIP

query dns_clients:
SELECT tb, clientIP, COUNT(*) FROM DNS GROUP BY ts/60 AS tb, clientIP`)

	// Single-set analysis conflicts across streams.
	single, err := Optimize(g, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tcpNode, _ := g.Node("tcp_flows")
	dnsNode, _ := g.Node("dns_clients")
	if Compatible(single.Best, tcpNode) && Compatible(single.Best, dnsNode) {
		t.Fatalf("single set %s should not satisfy both disjoint streams", single.Best)
	}

	per, err := OptimizePerStream(g, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !per.Sets.Get("TCP").Equal(MustParseSet("srcIP, destIP")) {
		t.Errorf("TCP set = %s", per.Sets.Get("TCP"))
	}
	if !per.Sets.Get("DNS").Equal(MustParseSet("clientIP")) {
		t.Errorf("DNS set = %s", per.Sets.Get("DNS"))
	}
	if !CompatibleStreams(per.Sets, tcpNode) || !CompatibleStreams(per.Sets, dnsNode) {
		t.Errorf("per-stream sets %s must satisfy both queries", per.Sets)
	}
	if !DistributableStreams(per.Sets, tcpNode) {
		t.Error("tcp_flows should be distributable")
	}
}

func TestPerStreamCrossJoinDifferentAttrNames(t *testing.T) {
	// A cross-stream join on differently named attributes: impossible
	// under the shared-set assumption, supported per stream with
	// position-aligned sets.
	g := buildGraph(t, twoStreamDDL, `
query lookups:
SELECT TCP.time, TCP.srcIP, DNS.server
FROM TCP JOIN DNS
WHERE TCP.time = DNS.ts AND TCP.srcIP = DNS.clientIP`)
	j, _ := g.Node("lookups")

	// Shared-set inference skips the pair (attr names differ).
	if r := NodeRequirement(j); !r.Set.IsEmpty() {
		t.Fatalf("shared-set requirement should be empty, got %s", r.Set)
	}

	per, err := OptimizePerStream(g, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tcp, dns := per.Sets.Get("TCP"), per.Sets.Get("DNS")
	if len(tcp) != 1 || len(dns) != 1 {
		t.Fatalf("per-stream sets = %s", per.Sets)
	}
	if tcp[0].String() != "srcIP" || dns[0].String() != "clientIP" {
		t.Errorf("aligned sets = %s / %s", tcp, dns)
	}
	if !CompatibleStreams(per.Sets, j) {
		t.Error("aligned per-stream sets must make the join compatible")
	}
	if len(per.CrossJoins) != 1 || per.CrossJoins[0] != "lookups" {
		t.Errorf("cross joins = %v", per.CrossJoins)
	}
	// Misaligned shapes break compatibility.
	bad := StreamSets{
		"tcp": MustParseSet("srcIP & 0xFF00"),
		"dns": MustParseSet("clientIP"),
	}
	if CompatibleStreams(bad, j) {
		t.Error("different shapes must be incompatible")
	}
	// Same shape on both sides is fine.
	good := StreamSets{
		"tcp": MustParseSet("srcIP & 0xFF00"),
		"dns": MustParseSet("clientIP & 0xFF00"),
	}
	if !CompatibleStreams(good, j) {
		t.Error("same-shaped coarsening should remain compatible")
	}
	// Length mismatch is incompatible.
	if CompatibleStreams(StreamSets{
		"tcp": MustParseSet("srcIP"),
		"dns": MustParseSet("clientIP, server"),
	}, j) {
		t.Error("length mismatch must be incompatible")
	}
}

func TestPerStreamSelfJoinUnchanged(t *testing.T) {
	// Per-stream semantics on a single-stream query set degenerate to
	// the shared-set analysis.
	g := buildGraph(t, tcpDDL, complexSet)
	per, err := OptimizePerStream(g, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !per.Sets.Get("TCP").Equal(MustParseSet("srcIP")) {
		t.Errorf("TCP set = %s, want (srcIP)", per.Sets.Get("TCP"))
	}
	for _, name := range []string{"flows", "heavy_flows", "flow_pairs"} {
		n, _ := g.Node(name)
		if !CompatibleStreams(per.Sets, n) {
			t.Errorf("%s should be compatible", name)
		}
	}
}

func TestStreamSetsString(t *testing.T) {
	ss := StreamSets{"tcp": MustParseSet("srcIP"), "dns": MustParseSet("clientIP")}
	s := ss.String()
	if !strings.Contains(s, "dns:(clientIP)") || !strings.Contains(s, "tcp:(srcIP)") {
		t.Errorf("StreamSets string = %q", s)
	}
	if ss.IsEmpty() {
		t.Error("non-empty sets reported empty")
	}
	if !(StreamSets{}).IsEmpty() {
		t.Error("empty sets reported non-empty")
	}
}
