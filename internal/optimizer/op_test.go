package optimizer

import (
	"strings"
	"testing"

	"qap/internal/core"
)

func TestOpKindStrings(t *testing.T) {
	kinds := []OpKind{OpScan, OpUnion, OpSelProj, OpAggregate, OpAggSub,
		OpAggSuper, OpJoin, OpOutput, OpWindow}
	for _, k := range kinds {
		if s := k.String(); s == "" || strings.HasPrefix(s, "op(") {
			t.Errorf("missing name for kind %d", k)
		}
	}
	if OpKind(99).String() != "op(99)" {
		t.Error("unknown kind should render numerically")
	}
}

func TestHostOfPartitionClamps(t *testing.T) {
	p := &Plan{Hosts: 3, PartitionsPerHost: 2}
	cases := map[int]int{0: 0, 1: 0, 2: 1, 5: 2, 9: 2}
	for part, want := range cases {
		if got := p.HostOfPartition(part); got != want {
			t.Errorf("HostOfPartition(%d) = %d, want %d", part, got, want)
		}
	}
	if (&Plan{}).HostOfPartition(3) != 0 {
		t.Error("zero PartitionsPerHost should default to host 0")
	}
}

func TestSplitterSetSelection(t *testing.T) {
	shared := core.MustParseSet("srcIP")
	p := &Plan{Set: shared}
	if !p.SplitterSet("TCP").Equal(shared) {
		t.Error("shared set should apply to every stream")
	}
	p.StreamSets = core.StreamSets{"tcp": core.MustParseSet("destIP")}
	if !p.SplitterSet("TCP").Equal(core.MustParseSet("destIP")) {
		t.Error("per-stream set should take precedence")
	}
	if !p.SplitterSet("UDP").IsEmpty() {
		t.Error("streams without a per-stream set fall back to round robin")
	}
}

func TestDefaultOptionsShape(t *testing.T) {
	o := DefaultOptions()
	if o.Hosts != 4 || o.PartitionsPerHost != 2 || !o.PartialAgg || o.PartialScope != ScopeHost {
		t.Errorf("DefaultOptions = %+v", o)
	}
}

func TestWindowedAggregateCentralWithoutPartials(t *testing.T) {
	// PartialAgg disabled: the windowed aggregation centralizes as
	// one sub + one window behind the merge.
	g := buildGraph(t, `
query w:
SELECT pane, srcIP, COUNT(*) AS cnt
FROM TCP GROUP BY time/10 AS pane, srcIP WINDOW 3`)
	p := MustBuild(g, nil, Options{Hosts: 2, PartitionsPerHost: 2, PartialAgg: false})
	if p.CountKind(OpWindow) != 1 || p.CountKind(OpAggSub) != 1 || p.CountKind(OpUnion) != 1 {
		t.Errorf("central windowed plan wrong:\n%s", p)
	}
	for _, op := range p.Ops {
		if (op.Kind == OpWindow || op.Kind == OpAggSub) && op.Host != p.AggregatorHost {
			t.Errorf("%s should sit on the aggregator", op.Label())
		}
	}
}
