// Package schema defines stream schemas for the query-aware
// partitioning system: named streams with typed attributes, where one
// or more attributes may be marked as temporally ordered (increasing or
// decreasing). Temporal annotations are what let the tumbling-window
// analyzer decide which group-by terms define the window epoch and
// which are true grouping attributes (paper Section 3.1).
package schema

import (
	"fmt"
	"strings"

	"qap/internal/sqlval"
)

// Order is the temporal ordering annotation of an attribute.
type Order uint8

// Attribute orderings.
const (
	Unordered Order = iota
	Increasing
	Decreasing
)

// String returns the DDL keyword for the ordering.
func (o Order) String() string {
	switch o {
	case Increasing:
		return "increasing"
	case Decreasing:
		return "decreasing"
	default:
		return ""
	}
}

// Type is an attribute's declared type.
type Type uint8

// Attribute types.
const (
	TUint Type = iota
	TInt
	TFloat
	TBool
	TString
)

// String returns the DDL keyword for the type.
func (t Type) String() string {
	switch t {
	case TUint:
		return "uint"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TBool:
		return "bool"
	case TString:
		return "string"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// ValueKind maps the declared type to its runtime value kind.
func (t Type) ValueKind() sqlval.Kind {
	switch t {
	case TUint:
		return sqlval.KindUint
	case TInt:
		return sqlval.KindInt
	case TFloat:
		return sqlval.KindFloat
	case TBool:
		return sqlval.KindBool
	case TString:
		return sqlval.KindString
	default:
		return sqlval.KindNull
	}
}

// Attribute is one column of a stream.
type Attribute struct {
	Name  string
	Type  Type
	Order Order
}

// Temporal reports whether the attribute carries a temporal ordering.
func (a Attribute) Temporal() bool { return a.Order != Unordered }

// Stream is a named input stream schema.
type Stream struct {
	Name  string
	Attrs []Attribute

	index map[string]int // lower-cased attribute name -> position
}

// NewStream builds a stream schema and validates attribute uniqueness.
func NewStream(name string, attrs []Attribute) (*Stream, error) {
	if name == "" {
		return nil, fmt.Errorf("schema: stream name must not be empty")
	}
	s := &Stream{Name: name, Attrs: attrs, index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("schema: stream %s: attribute %d has empty name", name, i)
		}
		key := strings.ToLower(a.Name)
		if _, dup := s.index[key]; dup {
			return nil, fmt.Errorf("schema: stream %s: duplicate attribute %q", name, a.Name)
		}
		s.index[key] = i
	}
	return s, nil
}

// Lookup returns the position and definition of an attribute by
// case-insensitive name.
func (s *Stream) Lookup(name string) (int, Attribute, bool) {
	i, ok := s.index[strings.ToLower(name)]
	if !ok {
		return -1, Attribute{}, false
	}
	return i, s.Attrs[i], true
}

// TemporalAttrs returns the names of all temporally ordered attributes.
func (s *Stream) TemporalAttrs() []string {
	var out []string
	for _, a := range s.Attrs {
		if a.Temporal() {
			out = append(out, a.Name)
		}
	}
	return out
}

// String renders the stream in DDL form.
func (s *Stream) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, a := range s.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		b.WriteByte(' ')
		b.WriteString(a.Type.String())
		if a.Temporal() {
			b.WriteByte(' ')
			b.WriteString(a.Order.String())
		}
	}
	b.WriteByte(')')
	return b.String()
}

// Catalog is a set of stream schemas addressed by case-insensitive name.
type Catalog struct {
	streams map[string]*Stream
	order   []string // insertion order for deterministic iteration
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{streams: make(map[string]*Stream)}
}

// Add registers a stream, rejecting duplicates.
func (c *Catalog) Add(s *Stream) error {
	key := strings.ToLower(s.Name)
	if _, dup := c.streams[key]; dup {
		return fmt.Errorf("schema: duplicate stream %q", s.Name)
	}
	c.streams[key] = s
	c.order = append(c.order, key)
	return nil
}

// Stream looks up a stream by case-insensitive name.
func (c *Catalog) Stream(name string) (*Stream, bool) {
	s, ok := c.streams[strings.ToLower(name)]
	return s, ok
}

// Streams returns all streams in insertion order.
func (c *Catalog) Streams() []*Stream {
	out := make([]*Stream, 0, len(c.order))
	for _, k := range c.order {
		out = append(out, c.streams[k])
	}
	return out
}

// String renders the catalog as DDL, one stream per line.
func (c *Catalog) String() string {
	var b strings.Builder
	for i, s := range c.Streams() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(s.String())
	}
	return b.String()
}
