// Package trace is the deterministic causal tracing layer: structured
// event records keyed by deterministic identifiers — epoch, round,
// window, host, operator — and never by wall clock. Both cluster
// engines, the batched exec operators, and the adaptive controller
// emit into per-shard buffers (one single-writer shard per island plus
// one for the splitter/driver), and the collector concatenates shards
// in a fixed registration order, so the canonical export is
// byte-identical for any worker count, batch size, or engine.
//
// Wall-clock and engine-shape facts (workers, batch size, transport
// round/batch/link counters) are quarantined in a single trailing
// record of kind "timing", exactly like the run report's "timing" key:
// JSONL includes it, CanonicalJSONL strips it.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"qap/internal/obs"
)

// Event kinds. One flat record type keeps the JSONL schema trivial to
// scan and diff; kind selects which fields are meaningful.
const (
	// KindHeader opens a trace (or a phase of a composed adaptive
	// trace): cluster shape, window size, duration, partitioning.
	KindHeader = "header"
	// KindRound closes one splitter round: all packets sharing one
	// timestamp delivered, watermark advanced.
	KindRound = "round"
	// KindFlush is the end-of-stream flush round.
	KindFlush = "flush"
	// KindHostWindow is one island's integer counter deltas over one
	// closed monitoring window (the span record per-host load is
	// rebuilt from; central islands carry Central=true). CPU units are
	// deliberately absent from all trace events: float cost sums are
	// only tolerance-equal across batch sizes (the accounting loop
	// visits a round's edges in delivery-group order, so the sums
	// round differently), while the network load the Section 4.2.1
	// bound constrains is integer and exact. CPU cost lives in the
	// run report; the canonical trace is the byte-identical surface.
	KindHostWindow = "host_window"
	// KindOpWindow is one operator's integer counter deltas over one
	// closed monitoring window.
	KindOpWindow = "op_window"
	// KindEpochFlush marks an aggregation emitting closed epochs at a
	// watermark advance (or at end of stream).
	KindEpochFlush = "epoch_flush"
	// KindPaneFlush marks a sliding-window merge closing one pane.
	KindPaneFlush = "pane_flush"
	// Controller events, emitted by the adaptive repartitioner.
	KindTriggerEval  = "trigger_eval"
	KindTrigger      = "trigger"
	KindStatsRefresh = "stats_refresh"
	KindReanalyze    = "reanalyze"
	KindSwitch       = "switch"
	KindConfirm      = "confirm"
	KindReplay       = "replay"
	// KindTiming is the quarantined nondeterministic trailer: wall
	// time, workers, batch size, engine, transport counters. It is the
	// only record CanonicalJSONL omits.
	KindTiming = "timing"
)

// Event is one trace record. Every field except Kind is omitted from
// the JSON encoding at its zero value, which is lossless: decoding
// restores the zero value. Identity fields are deterministic trace
// coordinates; wall clock appears only in the KindTiming record.
type Event struct {
	Kind string `json:"kind"`
	// Phase labels the run a record belongs to in a composed trace
	// ("initial", "controller", "final"); empty for plain runs.
	Phase string `json:"phase,omitempty"`

	// Identity: deterministic coordinates.
	Window  int    `json:"window,omitempty"` // monitoring window index
	Round   int    `json:"round,omitempty"`  // splitter round index
	WM      uint64 `json:"wm,omitempty"`     // watermark (trace seconds)
	Host    int    `json:"host,omitempty"`   // leaf island host id
	Central bool   `json:"central,omitempty"`
	Op      int    `json:"op,omitempty"` // physical operator id
	OpKind  string `json:"op_kind,omitempty"`
	Query   string `json:"query,omitempty"`

	// Counters (deltas or event sizes, depending on kind).
	Rows        int64 `json:"rows,omitempty"`
	Groups      int64 `json:"groups,omitempty"`
	RowsIn      int64 `json:"rows_in,omitempty"`
	RowsOut     int64 `json:"rows_out,omitempty"`
	Advances    int64 `json:"advances,omitempty"`
	Flushes     int64 `json:"flushes,omitempty"`
	NetTuplesIn int64 `json:"net_tuples_in,omitempty"`
	NetBytesIn  int64 `json:"net_bytes_in,omitempty"`
	IPCTuplesIn int64 `json:"ipc_tuples_in,omitempty"`
	Tuples      int64 `json:"tuples,omitempty"`

	// Header fields.
	SchemaVersion  int     `json:"schema_version,omitempty"`
	Hosts          int     `json:"hosts,omitempty"`
	AggregatorHost int     `json:"aggregator_host,omitempty"`
	WindowSec      int     `json:"window_sec,omitempty"`
	DurationSec    float64 `json:"duration_sec,omitempty"`
	Partitioning   string  `json:"partitioning,omitempty"`

	// Controller fields.
	Bound  float64 `json:"bound,omitempty"`
	Factor float64 `json:"factor,omitempty"`
	Rate   float64 `json:"rate,omitempty"`
	Set    string  `json:"set,omitempty"`
	Note   string  `json:"note,omitempty"`

	// Quarantined fields: meaningful only on the KindTiming record.
	Engine    string `json:"engine,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	BatchSize int    `json:"batch_size,omitempty"`
	WallNanos int64  `json:"wall_nanos,omitempty"`
	Rounds    int64  `json:"rounds,omitempty"`
	Batches   int64  `json:"batches,omitempty"`
	LinkItems int64  `json:"link_items,omitempty"`
}

// Mode selects the per-shard buffering policy.
type Mode int

const (
	// ModeFull keeps every event (whole-run capture).
	ModeFull Mode = iota
	// ModeRing keeps the last RingSize events per shard — a bounded
	// flight recorder. Ring traces are still deterministic (the same
	// events are dropped on every run), but no longer reconstruct the
	// full load series.
	ModeRing
)

// DefaultRingSize bounds each shard in ModeRing when Config.RingSize
// is zero.
const DefaultRingSize = 4096

// Config configures trace capture for one run.
type Config struct {
	Mode Mode
	// RingSize is the per-shard capacity in ModeRing (0 = DefaultRingSize).
	RingSize int
}

// Collector owns a run's shards. Shards must be registered in a fixed
// order (the engines use: driver, leaf islands 0..H-1, central island)
// because Gather concatenates them in registration order to form the
// canonical event sequence.
type Collector struct {
	cfg    Config
	shards []*Shard
}

// NewCollector builds a collector for one run.
func NewCollector(cfg Config) *Collector {
	if cfg.Mode == ModeRing && cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	return &Collector{cfg: cfg}
}

// NewShard registers the next shard. Each shard has exactly one
// writer; different shards may be written from different goroutines.
func (c *Collector) NewShard() *Shard {
	s := &Shard{mode: c.cfg.Mode, ring: c.cfg.RingSize}
	c.shards = append(c.shards, s)
	return s
}

// Gather assembles the trace: header, then every shard's events in
// registration order, then the trailing records (the timing trailer).
// Call only after all shard writers have finished.
func (c *Collector) Gather(header Event, tail ...Event) *Trace {
	t := &Trace{Records: []Event{header}}
	for _, s := range c.shards {
		t.Records = append(t.Records, s.drain()...)
	}
	t.Records = append(t.Records, tail...)
	return t
}

// Shard is a single-writer event buffer.
type Shard struct {
	mode    Mode
	ring    int
	events  []Event
	start   int   // ring head when the ring has wrapped
	dropped int64 // events overwritten in ModeRing
}

// Emit appends an event. Nil-safe: a nil shard (tracing disabled)
// drops the event, so call sites can emit unconditionally behind one
// nil check.
func (s *Shard) Emit(e Event) {
	if s == nil {
		return
	}
	if s.mode == ModeRing && len(s.events) == s.ring {
		s.events[s.start] = e
		s.start = (s.start + 1) % s.ring
		s.dropped++
		return
	}
	s.events = append(s.events, e)
}

// EmitAll appends events in order. The live backend uses it to install
// a remote island's shipped shard into the local collector's shard.
func (s *Shard) EmitAll(events []Event) {
	if s == nil {
		return
	}
	for _, e := range events {
		s.Emit(e)
	}
}

// Events returns a copy of the shard's buffered events in emission
// order. The live backend uses it to serialize a remote island's shard;
// unlike drain it leaves the shard intact.
func (s *Shard) Events() []Event {
	if s == nil {
		return nil
	}
	return append([]Event(nil), s.drain()...)
}

// Dropped reports how many events the ring overwrote.
func (s *Shard) Dropped() int64 {
	if s == nil {
		return 0
	}
	return s.dropped
}

// drain returns the shard's events in emission order.
func (s *Shard) drain() []Event {
	if s.start == 0 {
		return s.events
	}
	out := make([]Event, 0, len(s.events))
	out = append(out, s.events[s.start:]...)
	out = append(out, s.events[:s.start]...)
	return out
}

// Trace is a gathered event sequence.
type Trace struct {
	Records []Event
}

// WithPhase returns a copy of the trace with every record's Phase set,
// for composing multi-run traces (adaptive initial/final).
func (t *Trace) WithPhase(phase string) *Trace {
	if t == nil {
		return nil
	}
	out := &Trace{Records: make([]Event, len(t.Records))}
	copy(out.Records, t.Records)
	for i := range out.Records {
		out.Records[i].Phase = phase
	}
	return out
}

// Append adds records in order (controller events, composed phases).
func (t *Trace) Append(events ...Event) {
	t.Records = append(t.Records, events...)
}

// JSONL encodes the full trace, one JSON object per line, timing
// trailer included.
func (t *Trace) JSONL() ([]byte, error) {
	return t.jsonl(true)
}

// CanonicalJSONL encodes the trace with every KindTiming record
// stripped. This is the determinism surface: canonical bytes are
// identical across workers, batch sizes, and engines.
func (t *Trace) CanonicalJSONL() ([]byte, error) {
	return t.jsonl(false)
}

func (t *Trace) jsonl(timing bool) ([]byte, error) {
	var buf bytes.Buffer
	for i := range t.Records {
		if !timing && t.Records[i].Kind == KindTiming {
			continue
		}
		b, err := json.Marshal(&t.Records[i])
		if err != nil {
			return nil, err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// ReadJSONL parses a JSONL trace (canonical or full).
func ReadJSONL(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	t := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if e.Kind == "" {
			return nil, fmt.Errorf("trace: line %d: record has no kind", line)
		}
		t.Records = append(t.Records, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Header returns the first header record matching phase (any phase
// when phase is empty), or nil.
func (t *Trace) Header(phase string) *Event {
	for i := range t.Records {
		e := &t.Records[i]
		if e.Kind == KindHeader && (phase == "" || e.Phase == phase) {
			return e
		}
	}
	return nil
}

// Phases lists the distinct phases of the trace's headers, in order.
func (t *Trace) Phases() []string {
	var out []string
	seen := map[string]bool{}
	for i := range t.Records {
		e := &t.Records[i]
		if e.Kind == KindHeader && !seen[e.Phase] {
			seen[e.Phase] = true
			out = append(out, e.Phase)
		}
	}
	return out
}

// HostLoadSeries rebuilds the per-host load series of the phase's run
// from its host_window events. The result equals the engine's own
// obs.LoadWindow series (cluster.Result.LoadSeries) exactly on
// geometry and every integer counter — the events carry exactly the
// per-island window deltas — with CPUUnits left zero, since CPU cost
// is quarantined from the canonical trace (compare against
// StripCPUUnits of the engine series). Returns nil when the phase has
// no header or recorded no windows (e.g. an empty trace or a ring
// capture that dropped them all).
func (t *Trace) HostLoadSeries(phase string) []obs.LoadWindow {
	hdr := t.Header(phase)
	if hdr == nil || hdr.Hosts <= 0 || hdr.WindowSec <= 0 || hdr.DurationSec < 1 {
		return nil
	}
	winSec := uint64(hdr.WindowSec)
	maxTime := uint64(hdr.DurationSec) - 1 // DurationSec is maxTime+1
	final := int(maxTime/winSec) + 1
	series := make([]obs.LoadWindow, 0, final)
	for w := 0; w < final; w++ {
		lw := obs.LoadWindow{
			Window:   w,
			StartSec: uint64(w) * winSec,
			EndSec:   uint64(w+1) * winSec,
		}
		if lw.EndSec > maxTime+1 {
			lw.EndSec = maxTime + 1
		}
		lw.Hosts = make([]obs.HostWindow, hdr.Hosts)
		for h := range lw.Hosts {
			lw.Hosts[h].Host = h
		}
		series = append(series, lw)
	}
	any := false
	for i := range t.Records {
		e := &t.Records[i]
		if e.Kind != KindHostWindow || e.Phase != hdr.Phase {
			continue
		}
		if e.Window < 0 || e.Window >= final {
			continue
		}
		h := e.Host
		if e.Central {
			h = hdr.AggregatorHost
		}
		if h < 0 || h >= hdr.Hosts {
			continue
		}
		any = true
		hw := &series[e.Window].Hosts[h]
		hw.NetTuplesIn += e.NetTuplesIn
		hw.NetBytesIn += e.NetBytesIn
		hw.IPCTuplesIn += e.IPCTuplesIn
		hw.Tuples += e.Tuples
	}
	if !any {
		return nil
	}
	return series
}

// StripCPUUnits returns a copy of a load series with every host's
// CPUUnits zeroed: the projection HostLoadSeries reconstructs. Float
// CPU cost is only tolerance-equal across batch sizes, so it is
// excluded from the canonical trace surface the same way wall time is.
func StripCPUUnits(series []obs.LoadWindow) []obs.LoadWindow {
	if series == nil {
		return nil
	}
	out := make([]obs.LoadWindow, len(series))
	for i, w := range series {
		cw := w
		cw.Hosts = make([]obs.HostWindow, len(w.Hosts))
		copy(cw.Hosts, w.Hosts)
		for h := range cw.Hosts {
			cw.Hosts[h].CPUUnits = 0
		}
		out[i] = cw
	}
	return out
}
