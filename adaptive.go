package qap

import (
	"fmt"
	"sort"

	"qap/internal/netgen"
	"qap/internal/obs"
	"qap/internal/obs/trace"
)

// AdaptiveConfig configures RunAdaptive, the drift controller that
// closes the loop ROADMAP item 3 describes: monitor the deployed
// partitioning's per-host load online, detect divergence from the
// Section 4.2.1 bound, and repartition deterministically.
type AdaptiveConfig struct {
	// Deploy is the initial deployment shape; Deploy.Partitioning is
	// the set being monitored. PerStream deployments are not
	// supported (the re-optimizer targets the shared-set analysis).
	Deploy DeployConfig
	// Stats are the deploy-time workload statistics the Section 4.2.1
	// bound for the initial set is computed from (nil uses the static
	// heuristics). The trigger compares measured load against
	// TriggerFactor times that bound.
	Stats Stats
	// Analysis, when non-nil, is the search result that recommended
	// the initial set. Its candidate enumeration is reused by the
	// incremental re-optimization (Reanalyze); nil falls back to a
	// full re-search under the refreshed statistics.
	Analysis *Analysis
	// TriggerFactor inflates the bound before comparing: the trigger
	// fires on the first window whose measured max-host network rate
	// exceeds TriggerFactor × bound. Default 1.5.
	TriggerFactor float64
	// LoadWindowSec is the monitoring window length in trace seconds.
	// Default 10.
	LoadWindowSec int
	// WarmupWindows are skipped by the trigger scan (ramp-up windows
	// are not representative). Default 1.
	WarmupWindows int
	// RefreshWindows is how much recent history (in windows, ending
	// at the trigger boundary) the statistics refresh measures.
	// Default 1: the window that violated the bound is exactly the
	// drifted regime to re-plan for. Default 1.
	RefreshWindows int
}

// AdaptiveResult reports one adaptive run: what was monitored, whether
// and when the trigger fired, the refreshed decision, and the final
// (authoritative) run. Every field is deterministic — a pure function
// of the streams and the config — for any Workers/BatchSize, which is
// what lets difftest sweep adaptive runs byte-for-byte.
type AdaptiveResult struct {
	// Initial is the full-trace monitored run on the initial set.
	Initial *RunResult
	// Final holds the authoritative outputs: the post-switch
	// deployment's replayed run when Repartitioned, otherwise
	// Initial itself.
	Final      *RunResult
	InitialSet Set
	FinalSet   Set
	// Bound is the Section 4.2.1 predicted max-host network rate
	// (bytes/sec) for the initial set under the deploy-time stats;
	// the trigger threshold is TriggerFactor × Bound.
	Bound         float64
	TriggerFactor float64
	LoadWindowSec int
	// TriggerWindow is the first monitoring window whose measured
	// max-host rate exceeded the threshold (-1: never fired, in which
	// case every switch field below is zero-valued).
	TriggerWindow int
	// TriggerRate is the offending measured rate.
	TriggerRate float64
	// SwitchTimeSec is the epoch boundary (the trigger window's end)
	// where the controller drains and switches.
	SwitchTimeSec uint64
	// Repartitioned reports whether the refreshed decision actually
	// changed the set (the trigger can fire and re-optimization still
	// confirm the current set).
	Repartitioned bool
	// RefreshedStats are the statistics measured over the trigger
	// window's traffic; NewBound is the bound for FinalSet under
	// them.
	RefreshedStats *StaticStats
	NewBound       float64
	// PostSwitchPeak is the highest measured max-host rate in the
	// windows after the trigger window in the final run (final
	// flush-artifact window excluded); comparing it against
	// TriggerFactor × NewBound is the acceptance check that
	// repartitioning restored the bound.
	PostSwitchPeak float64
	// Trace is the composed causal trace: the initial run's records
	// (phase "initial"), then the controller's decision chain (phase
	// "controller": trigger_eval, trigger, stats_refresh, reanalyze,
	// then switch+replay or confirm), then — when Repartitioned — the
	// replayed final run's records (phase "final"). Nil unless
	// Deploy.Trace was set; deterministic like every other field.
	Trace *RunTrace
}

// WithinBoundAfterSwitch reports whether the post-switch load came
// back inside the (inflated) refreshed bound.
func (a *AdaptiveResult) WithinBoundAfterSwitch() bool {
	return a.PostSwitchPeak <= a.TriggerFactor*a.NewBound
}

// RunAdaptive executes the adaptive repartitioning protocol over the
// given streams:
//
//  1. Deploy the initial set with load monitoring on and run.
//  2. Scan the load series (skipping warmup and the final
//     flush-artifact window) for the first window whose measured
//     max-host network rate exceeds TriggerFactor times the Section
//     4.2.1 bound.
//  3. On a violation, drain at the trigger window's end boundary,
//     refresh statistics by measuring the trigger window's traffic
//     (MeasureStats over the re-based window slice), and re-run the
//     optimizer incrementally (Reanalyze) under the refreshed stats.
//  4. If the decision changed, switch: deploy the new set and replay
//     the buffered stream history through it from clean state.
//
// Because the simulator buffers whole traces, the replay runs the
// complete history, which makes the adapted run's outputs structurally
// byte-identical to a cold restart on the new set — the equivalence
// difftest's repartition axis asserts, alongside the determinism of
// the trigger decision itself across Workers/BatchSize.
func (s *System) RunAdaptive(cfg AdaptiveConfig, streams map[string][]netgen.Packet) (*AdaptiveResult, error) {
	if cfg.Deploy.PerStream != nil {
		return nil, fmt.Errorf("qap: RunAdaptive does not support per-stream partitioning")
	}
	if cfg.TriggerFactor <= 0 {
		cfg.TriggerFactor = 1.5
	}
	if cfg.LoadWindowSec <= 0 {
		cfg.LoadWindowSec = 10
	}
	if cfg.WarmupWindows < 0 {
		cfg.WarmupWindows = 0
	} else if cfg.WarmupWindows == 0 {
		cfg.WarmupWindows = 1
	}
	if cfg.RefreshWindows <= 0 {
		cfg.RefreshWindows = 1
	}

	depCfg := cfg.Deploy
	depCfg.LoadWindowSec = cfg.LoadWindowSec
	dep, err := s.Deploy(depCfg)
	if err != nil {
		return nil, err
	}
	initial, err := dep.RunStreams(streams)
	if err != nil {
		return nil, err
	}

	// Controller trace events accumulate in ctl; finish composes them
	// with the phase-labelled run traces at every return point.
	tracing := depCfg.Trace != nil
	var ctl []trace.Event
	emit := func(e trace.Event) {
		if tracing {
			e.Phase = "controller"
			ctl = append(ctl, e)
		}
	}
	finish := func(res *AdaptiveResult) *AdaptiveResult {
		if !tracing {
			return res
		}
		tr := res.Initial.Trace.WithPhase("initial")
		tr.Append(ctl...)
		if res.Repartitioned {
			tr.Records = append(tr.Records, res.Final.Trace.WithPhase("final").Records...)
		}
		res.Trace = tr
		return res
	}

	res := &AdaptiveResult{
		Initial:       initial,
		Final:         initial,
		InitialSet:    depCfg.Partitioning,
		FinalSet:      depCfg.Partitioning,
		Bound:         s.PlanTotalCost(depCfg.Partitioning, cfg.Stats),
		TriggerFactor: cfg.TriggerFactor,
		LoadWindowSec: cfg.LoadWindowSec,
		TriggerWindow: -1,
	}

	// The final window absorbs the end-of-stream flushes (every open
	// epoch emits at once) — a shutdown artifact, not steady-state
	// load a real deployment would ever drain inside. Exclude it.
	series := initial.LoadSeries
	if len(series) > 0 {
		series = series[:len(series)-1]
	}
	win, rate := obs.FirstLoadViolation(series, res.Bound, cfg.TriggerFactor, cfg.WarmupWindows)
	emit(trace.Event{Kind: trace.KindTriggerEval, Window: win, Rate: rate,
		Bound: res.Bound, Factor: cfg.TriggerFactor, Set: res.InitialSet.String()})
	if win < 0 {
		return finish(res), nil
	}
	res.TriggerWindow, res.TriggerRate = win, rate
	res.SwitchTimeSec = initial.LoadSeries[win].EndSec
	emit(trace.Event{Kind: trace.KindTrigger, Window: win, Rate: rate,
		WM: res.SwitchTimeSec, Bound: res.Bound, Factor: cfg.TriggerFactor,
		Note: "drain at the trigger window's end boundary"})

	// Refresh statistics from the traffic that violated the bound:
	// the RefreshWindows windows ending at the drain boundary,
	// re-based to time zero so measured rates reflect the drifted
	// regime rather than being diluted by the whole prefix.
	base := uint64(0)
	if span := uint64(cfg.RefreshWindows) * uint64(cfg.LoadWindowSec); res.SwitchTimeSec > span {
		base = res.SwitchTimeSec - span
	}
	sample := make(map[string][]netgen.Packet, len(streams))
	for name, pks := range streams { //qap:allow maprange -- per-stream slicing, order-insensitive
		lo := sort.Search(len(pks), func(i int) bool { return pks[i].Time >= base })
		hi := sort.Search(len(pks), func(i int) bool { return pks[i].Time >= res.SwitchTimeSec })
		win := make([]netgen.Packet, hi-lo)
		for i, p := range pks[lo:hi] {
			p.Time -= base
			win[i] = p
		}
		sample[name] = win
	}
	refreshed, err := s.MeasureStats(sample)
	if err != nil {
		return nil, fmt.Errorf("qap: RunAdaptive: statistics refresh over [%d,%d)s failed: %w",
			base, res.SwitchTimeSec, err)
	}
	res.RefreshedStats = refreshed
	emit(trace.Event{Kind: trace.KindStatsRefresh, WM: res.SwitchTimeSec,
		Note: fmt.Sprintf("measured [%d,%d)s re-based to zero", base, res.SwitchTimeSec)})

	re, err := s.Reanalyze(cfg.Analysis, refreshed)
	if err != nil {
		return nil, err
	}
	res.FinalSet = re.Best
	res.NewBound = s.PlanTotalCost(res.FinalSet, refreshed)
	emit(trace.Event{Kind: trace.KindReanalyze, WM: res.SwitchTimeSec,
		Set: res.FinalSet.String(), Bound: res.NewBound})
	if res.FinalSet.Equal(res.InitialSet) {
		// Re-optimization confirmed the deployed set; no switch. The
		// post-trigger windows of the initial run are the "after".
		res.PostSwitchPeak = peakAfterWindow(initial.LoadSeries, win)
		emit(trace.Event{Kind: trace.KindConfirm, WM: res.SwitchTimeSec,
			Set: res.InitialSet.String(), Rate: res.PostSwitchPeak})
		return finish(res), nil
	}

	// Switch: deploy the refreshed decision and replay the buffered
	// history from clean operator state.
	res.Repartitioned = true
	emit(trace.Event{Kind: trace.KindSwitch, WM: res.SwitchTimeSec,
		Set: res.FinalSet.String(), Bound: res.NewBound})
	newCfg := depCfg
	newCfg.Partitioning = res.FinalSet
	newDep, err := s.Deploy(newCfg)
	if err != nil {
		return nil, err
	}
	final, err := newDep.RunStreams(streams)
	if err != nil {
		return nil, err
	}
	res.Final = final
	res.PostSwitchPeak = peakAfterWindow(final.LoadSeries, win)
	emit(trace.Event{Kind: trace.KindReplay, WM: res.SwitchTimeSec,
		Set: res.FinalSet.String(), Rate: res.PostSwitchPeak,
		Note: "full history replayed from clean state; outputs byte-identical to a cold restart"})
	return finish(res), nil
}

// peakAfterWindow returns the highest per-window max-host network
// rate strictly after window `after`, excluding the final window (the
// end-of-stream flush artifact).
func peakAfterWindow(series []LoadWindow, after int) float64 {
	peak := 0.0
	for i := 0; i < len(series)-1; i++ {
		if series[i].Window <= after {
			continue
		}
		if r := series[i].MaxHostNetBytesPerSec(); r > peak {
			peak = r
		}
	}
	return peak
}
