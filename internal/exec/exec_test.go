package exec

import (
	"testing"
	"testing/quick"

	"qap/internal/gsql"
	"qap/internal/sqlval"
)

func u(v uint64) sqlval.Value { return sqlval.Uint(v) }

func res(names ...string) Resolver { return ColsResolver("", names) }

func TestCompileArithmetic(t *testing.T) {
	r := res("a", "b")
	cases := []struct {
		src  string
		tp   Tuple
		want sqlval.Value
	}{
		{"a + b", Tuple{u(2), u(3)}, u(5)},
		{"a * b + 1", Tuple{u(2), u(3)}, u(7)},
		{"a / 60", Tuple{u(125), u(0)}, u(2)},
		{"a % 7", Tuple{u(9), u(0)}, u(2)},
		{"a & 0xF0", Tuple{u(0xAB), u(0)}, u(0xA0)},
		{"a | b", Tuple{u(0x0F), u(0xF0)}, u(0xFF)},
		{"a ^ b", Tuple{u(0xFF), u(0x0F)}, u(0xF0)},
		{"a >> 4", Tuple{u(0xAB), u(0)}, u(0x0A)},
		{"a << 2", Tuple{u(3), u(0)}, u(12)},
		{"a = b", Tuple{u(3), u(3)}, sqlval.Bool(true)},
		{"a != b", Tuple{u(3), u(3)}, sqlval.Bool(false)},
		{"a < b AND b < 10", Tuple{u(1), u(5)}, sqlval.Bool(true)},
		{"a > b OR a = 0", Tuple{u(0), u(5)}, sqlval.Bool(true)},
		{"NOT a = b", Tuple{u(1), u(2)}, sqlval.Bool(true)},
		{"-a", Tuple{u(3), u(0)}, sqlval.Int(-3)},
		{"~a & 0xFF", Tuple{u(0x0F), u(0)}, u(0xF0)},
		{"a - b", Tuple{u(3), u(5)}, sqlval.Int(-2)},
		{"ABS(a - b)", Tuple{u(3), u(5)}, sqlval.Int(2)},
		{"a / 0", Tuple{u(3), u(0)}, sqlval.Null},
	}
	for _, c := range cases {
		f := MustCompile(gsql.MustParseExpr(c.src), r, nil)
		got := f(c.tp)
		if !equalOrBothNull(got, c.want) {
			t.Errorf("%s over %v = %v, want %v", c.src, c.tp, got, c.want)
		}
	}
}

func equalOrBothNull(a, b sqlval.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() && b.IsNull()
	}
	return a.Equal(b) && a.Kind() == b.Kind()
}

func TestCompileParamsAndErrors(t *testing.T) {
	r := res("flags")
	f := MustCompile(gsql.MustParseExpr("flags = #PATTERN#"), r, Params{"PATTERN": u(0x26)})
	if !f(Tuple{u(0x26)}).AsBool() {
		t.Error("param comparison failed")
	}
	if _, err := Compile(gsql.MustParseExpr("flags = #PATTERN#"), r, nil); err == nil {
		t.Error("unbound parameter should fail")
	}
	if _, err := Compile(gsql.MustParseExpr("nosuch + 1"), r, nil); err == nil {
		t.Error("unknown column should fail")
	}
	if _, err := Compile(gsql.MustParseExpr("SUM(flags)"), r, nil); err == nil {
		t.Error("aggregate in scalar position should fail")
	}
}

func TestNullComparisonSemantics(t *testing.T) {
	r := res("x")
	null := Tuple{sqlval.Null}
	for _, src := range []string{"x = 1", "x != 1", "x < 1", "x >= 1"} {
		f := MustCompile(gsql.MustParseExpr(src), r, nil)
		if f(null).AsBool() {
			t.Errorf("%s with NULL should not be true", src)
		}
	}
	// NULL propagates through arithmetic.
	f := MustCompile(gsql.MustParseExpr("x + 1"), r, nil)
	if !f(null).IsNull() {
		t.Error("NULL + 1 should be NULL")
	}
}

func TestAccumulators(t *testing.T) {
	cases := []struct {
		name string
		vals []sqlval.Value
		want sqlval.Value
	}{
		{"COUNT", []sqlval.Value{u(1), u(2), sqlval.Null}, u(2)},
		{"SUM", []sqlval.Value{u(1), u(2), u(3)}, u(6)},
		{"SUM", []sqlval.Value{sqlval.Null}, sqlval.Null},
		{"MIN", []sqlval.Value{u(5), u(2), u(9)}, u(2)},
		{"MAX", []sqlval.Value{u(5), u(2), u(9)}, u(9)},
		{"AVG", []sqlval.Value{u(2), u(4)}, sqlval.Float(3)},
		{"OR_AGGR", []sqlval.Value{u(0x02), u(0x10), u(0x08)}, u(0x1A)},
		{"AND_AGGR", []sqlval.Value{u(0x0F), u(0x3F)}, u(0x0F)},
		{"XOR_AGGR", []sqlval.Value{u(5), u(3)}, u(6)},
		{"COUNT_DISTINCT", []sqlval.Value{u(1), u(1), u(2)}, u(2)},
	}
	for _, c := range cases {
		fac, err := NewAccumFactory(c.name)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		acc := fac()
		for _, v := range c.vals {
			acc.Add(v)
		}
		if got := acc.Result(); !equalOrBothNull(got, c.want) {
			t.Errorf("%s(%v) = %v, want %v", c.name, c.vals, got, c.want)
		}
	}
	if _, err := NewAccumFactory("NOPE"); err == nil {
		t.Error("unknown aggregate should fail")
	}
}

func TestSumAccumPromotesToFloat(t *testing.T) {
	fac, _ := NewAccumFactory("SUM")
	acc := fac()
	acc.Add(u(1))
	acc.Add(sqlval.Float(2.5))
	if got := acc.Result(); !got.Equal(sqlval.Float(3.5)) {
		t.Errorf("mixed SUM = %v", got)
	}
}

func TestFilterProject(t *testing.T) {
	r := res("time", "srcIP", "len")
	sink := &Collector{}
	op := &FilterProject{
		Filter: MustCompile(gsql.MustParseExpr("len > 10"), r, nil),
		Projs: []EvalFunc{
			MustCompile(gsql.MustParseExpr("time"), r, nil),
			MustCompile(gsql.MustParseExpr("srcIP & 0xFF00"), r, nil),
		},
		Out: sink,
	}
	op.Push(Tuple{u(1), u(0xABCD), u(5)})  // filtered out
	op.Push(Tuple{u(2), u(0xABCD), u(50)}) // passes
	op.Advance(10)
	op.Flush()
	if len(sink.Rows) != 1 || !sink.Rows[0][1].Equal(u(0xAB00)) {
		t.Fatalf("rows = %v", sink.Rows)
	}
	if !sink.Flushed {
		t.Error("flush not forwarded")
	}
	// Idempotent flush.
	op.Flush()
	if countFlushes(sink) != 1 {
		t.Error("flush should be forwarded once")
	}
}

func countFlushes(c *Collector) int {
	if c.Flushed {
		return 1
	}
	return 0
}

// buildFlowsAgg assembles the paper's flows aggregation: GROUP BY
// time/60 AS tb, srcIP, destIP with COUNT(*).
func buildFlowsAgg(out Consumer) *Aggregate {
	r := res("time", "srcIP", "destIP", "len")
	countFac, _ := NewAccumFactory("COUNT")
	return NewAggregate(AggregateConfig{
		GroupBy: []EvalFunc{
			MustCompile(gsql.MustParseExpr("time / 60"), r, nil),
			MustCompile(gsql.MustParseExpr("srcIP"), r, nil),
			MustCompile(gsql.MustParseExpr("destIP"), r, nil),
		},
		EpochIdx:  0,
		EpochOfWM: func(wm uint64) sqlval.Value { return u(wm / 60) },
		Aggs:      []AggColumn{{Factory: countFac}},
		Out:       out,
	})
}

func TestAggregateTumblingWindow(t *testing.T) {
	sink := &Collector{}
	agg := buildFlowsAgg(sink)
	// Epoch 0: two packets of flow (1,2), one of (3,4).
	agg.Push(Tuple{u(10), u(1), u(2), u(100)})
	agg.Push(Tuple{u(20), u(1), u(2), u(100)})
	agg.Push(Tuple{u(30), u(3), u(4), u(100)})
	if len(sink.Rows) != 0 {
		t.Fatal("nothing should flush before the watermark")
	}
	// Watermark into epoch 1 flushes epoch 0.
	agg.Advance(65)
	if len(sink.Rows) != 2 {
		t.Fatalf("epoch 0 rows = %v", sink.Rows)
	}
	// Deterministic order: sorted by group key after epoch.
	if !sink.Rows[0][1].Equal(u(1)) || !sink.Rows[0][3].Equal(u(2)) {
		t.Errorf("first row = %v", sink.Rows[0])
	}
	// Epoch 1 data flushes at Flush.
	agg.Push(Tuple{u(70), u(1), u(2), u(100)})
	agg.Flush()
	if len(sink.Rows) != 3 {
		t.Fatalf("after flush rows = %v", sink.Rows)
	}
	if agg.GroupCount() != 0 {
		t.Error("groups should be empty after flush")
	}
}

func TestAggregateLateTuplesDropped(t *testing.T) {
	sink := &Collector{}
	agg := buildFlowsAgg(sink)
	agg.Push(Tuple{u(10), u(1), u(2), u(100)})
	agg.Advance(70) // epoch 0 closed and emitted
	if len(sink.Rows) != 1 {
		t.Fatalf("rows = %v", sink.Rows)
	}
	// A watermark-violating tuple for epoch 0 must not re-open the
	// group (which would duplicate it downstream).
	agg.Push(Tuple{u(20), u(1), u(2), u(100)})
	agg.Flush()
	if len(sink.Rows) != 1 {
		t.Fatalf("late tuple re-opened a closed epoch: %v", sink.Rows)
	}
	if agg.Late != 1 {
		t.Errorf("Late = %d, want 1", agg.Late)
	}
}

func TestAggregateHavingAndPost(t *testing.T) {
	r := res("time", "srcIP", "destIP", "len")
	groupNames := []string{"tb", "srcIP", "destIP", "cnt"}
	gr := res(groupNames...)
	countFac, _ := NewAccumFactory("COUNT")
	sink := &Collector{}
	agg := NewAggregate(AggregateConfig{
		GroupBy: []EvalFunc{
			MustCompile(gsql.MustParseExpr("time / 60"), r, nil),
			MustCompile(gsql.MustParseExpr("srcIP"), r, nil),
			MustCompile(gsql.MustParseExpr("destIP"), r, nil),
		},
		EpochIdx:  0,
		EpochOfWM: func(wm uint64) sqlval.Value { return u(wm / 60) },
		Aggs:      []AggColumn{{Factory: countFac}},
		Having:    MustCompile(gsql.MustParseExpr("cnt >= 2"), gr, nil),
		Post: []EvalFunc{
			MustCompile(gsql.MustParseExpr("srcIP"), gr, nil),
			MustCompile(gsql.MustParseExpr("cnt * 10"), gr, nil),
		},
		Out: sink,
	})
	agg.Push(Tuple{u(10), u(1), u(2), u(100)})
	agg.Push(Tuple{u(20), u(1), u(2), u(100)})
	agg.Push(Tuple{u(30), u(3), u(4), u(100)})
	agg.Flush()
	if len(sink.Rows) != 1 {
		t.Fatalf("HAVING should keep one group, got %v", sink.Rows)
	}
	if !sink.Rows[0][0].Equal(u(1)) || !sink.Rows[0][1].Equal(u(20)) {
		t.Errorf("post-projection row = %v", sink.Rows[0])
	}
}

func TestAggregatePreFilter(t *testing.T) {
	r := res("time", "srcIP", "destIP", "len")
	countFac, _ := NewAccumFactory("COUNT")
	sink := &Collector{}
	agg := NewAggregate(AggregateConfig{
		PreFilter: MustCompile(gsql.MustParseExpr("len > 50"), r, nil),
		GroupBy:   []EvalFunc{MustCompile(gsql.MustParseExpr("srcIP"), r, nil)},
		EpochIdx:  -1,
		Aggs:      []AggColumn{{Factory: countFac}},
		Out:       sink,
	})
	agg.Push(Tuple{u(1), u(9), u(2), u(10)})
	agg.Push(Tuple{u(2), u(9), u(2), u(100)})
	agg.Flush()
	if len(sink.Rows) != 1 || !sink.Rows[0][1].Equal(u(1)) {
		t.Fatalf("rows = %v", sink.Rows)
	}
}

func TestSubSuperAggregateEquivalence(t *testing.T) {
	// Partial aggregation (paper Section 5.2.2): COUNT splits into
	// per-partition COUNT + central SUM; results must equal the
	// centralized aggregation for any tuple distribution.
	f := func(srcs []uint8, split uint8) bool {
		times := make([]uint64, len(srcs))
		for i := range srcs {
			times[i] = uint64(i)
		}
		// Centralized.
		central := &Collector{}
		agg := buildFlowsAgg(central)
		for i, s := range srcs {
			agg.Push(Tuple{u(times[i]), u(uint64(s % 4)), u(1), u(10)})
		}
		agg.Flush()

		// Two sub-aggregates (tuples split by parity of index against
		// split) feeding a SUM-merging super-aggregate.
		superSink := &Collector{}
		gr := res("tb", "srcIP", "destIP", "cnt")
		sumFac, _ := NewAccumFactory("SUM")
		super := NewAggregate(AggregateConfig{
			GroupBy: []EvalFunc{
				MustCompile(gsql.MustParseExpr("tb"), gr, nil),
				MustCompile(gsql.MustParseExpr("srcIP"), gr, nil),
				MustCompile(gsql.MustParseExpr("destIP"), gr, nil),
			},
			EpochIdx:  0,
			EpochOfWM: func(wm uint64) sqlval.Value { return u(wm / 60) },
			Aggs:      []AggColumn{{Factory: sumFac, Arg: MustCompile(gsql.MustParseExpr("cnt"), gr, nil)}},
			Out:       superSink,
		})
		union := NewUnion(2, super)
		subs := []*Aggregate{buildFlowsAgg(union.Port(0)), buildFlowsAgg(union.Port(1))}
		for i, s := range srcs {
			subs[(int(split)+i)%2].Push(Tuple{u(times[i]), u(uint64(s % 4)), u(1), u(10)})
		}
		for _, sub := range subs {
			sub.Flush()
		}
		super.Flush()

		return sameRowSet(central.Rows, superSink.Rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func sameRowSet(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	count := make(map[string]int)
	for _, t := range a {
		count[Key(t)]++
	}
	for _, t := range b {
		count[Key(t)]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

// buildPairsJoin assembles the paper's flow_pairs self-join: left key
// (srcIP, tb), right key (srcIP, tb+1). Input columns: tb, srcIP, cnt.
func buildPairsJoin(jt gsql.JoinType, out Consumer) *Join {
	r := res("tb", "srcIP", "cnt")
	comb := res("tb", "srcIP", "cnt", "tb2", "srcIP2", "cnt2")
	return NewJoin(JoinConfig{
		Left: JoinSideConfig{
			Keys: []EvalFunc{
				MustCompile(gsql.MustParseExpr("srcIP"), r, nil),
				MustCompile(gsql.MustParseExpr("tb"), r, nil),
			},
			Width:        3,
			TemporalIdx:  1,
			MinFutureKey: func(wm uint64) sqlval.Value { return u(wm / 60) },
		},
		Right: JoinSideConfig{
			Keys: []EvalFunc{
				MustCompile(gsql.MustParseExpr("srcIP"), r, nil),
				MustCompile(gsql.MustParseExpr("tb + 1"), r, nil),
			},
			Width:        3,
			TemporalIdx:  1,
			MinFutureKey: func(wm uint64) sqlval.Value { return u(wm/60 + 1) },
		},
		Type: jt,
		Projs: []EvalFunc{
			MustCompile(gsql.MustParseExpr("tb"), comb, nil),
			MustCompile(gsql.MustParseExpr("srcIP"), comb, nil),
			MustCompile(gsql.MustParseExpr("cnt"), comb, nil),
			MustCompile(gsql.MustParseExpr("cnt2"), comb, nil),
		},
		Out: out,
	})
}

func TestJoinConsecutiveEpochs(t *testing.T) {
	sink := &Collector{}
	j := buildPairsJoin(gsql.JoinInner, sink)
	// Same stream feeds both sides (self-join).
	feed := func(tb, src, cnt uint64) {
		j.LeftIn().Push(Tuple{u(tb), u(src), u(cnt)})
		j.RightIn().Push(Tuple{u(tb), u(src), u(cnt)})
	}
	feed(0, 1, 5) // epoch 0, src 1
	feed(1, 1, 7) // epoch 1, src 1: matches epoch 0 (tb = tb2+1)
	feed(1, 2, 3) // epoch 1, src 2: no epoch-0 partner
	j.LeftIn().Flush()
	j.RightIn().Flush()
	if len(sink.Rows) != 1 {
		t.Fatalf("rows = %v", sink.Rows)
	}
	row := sink.Rows[0]
	// (tb=1, srcIP=1, cnt=7, cnt2=5).
	if !row[0].Equal(u(1)) || !row[1].Equal(u(1)) || !row[2].Equal(u(7)) || !row[3].Equal(u(5)) {
		t.Errorf("row = %v", row)
	}
}

func TestJoinEvictionBoundsState(t *testing.T) {
	sink := &Collector{}
	j := buildPairsJoin(gsql.JoinInner, sink)
	for epoch := uint64(0); epoch < 50; epoch++ {
		j.LeftIn().Push(Tuple{u(epoch), u(epoch % 3), u(1)})
		j.RightIn().Push(Tuple{u(epoch), u(epoch % 3), u(1)})
		j.LeftIn().Advance(epoch * 60)
		j.RightIn().Advance(epoch * 60)
	}
	// With eviction, state stays bounded to a couple of epochs of
	// tuples rather than all 100.
	if j.StoredTuples() > 8 {
		t.Errorf("stored tuples = %d, eviction not working", j.StoredTuples())
	}
}

func TestOuterJoinPadding(t *testing.T) {
	sink := &Collector{}
	j := buildPairsJoin(gsql.JoinLeftOuter, sink)
	j.LeftIn().Push(Tuple{u(1), u(9), u(4)}) // no right partner
	j.LeftIn().Flush()
	j.RightIn().Flush()
	if len(sink.Rows) != 1 {
		t.Fatalf("rows = %v", sink.Rows)
	}
	if !sink.Rows[0][3].IsNull() {
		t.Errorf("right side should be NULL-padded: %v", sink.Rows[0])
	}
	// Full outer pads both sides.
	sink2 := &Collector{}
	j2 := buildPairsJoin(gsql.JoinFullOuter, sink2)
	j2.LeftIn().Push(Tuple{u(1), u(9), u(4)})
	j2.RightIn().Push(Tuple{u(5), u(8), u(2)})
	j2.LeftIn().Flush()
	j2.RightIn().Flush()
	if len(sink2.Rows) != 2 {
		t.Fatalf("full outer rows = %v", sink2.Rows)
	}
	// Inner join emits nothing for unmatched rows.
	sink3 := &Collector{}
	j3 := buildPairsJoin(gsql.JoinInner, sink3)
	j3.LeftIn().Push(Tuple{u(1), u(9), u(4)})
	j3.LeftIn().Flush()
	j3.RightIn().Flush()
	if len(sink3.Rows) != 0 {
		t.Errorf("inner join should drop unmatched: %v", sink3.Rows)
	}
}

func TestJoinResidualPredicate(t *testing.T) {
	r := res("ts", "k", "v")
	comb := res("ts", "k", "v", "ts2", "k2", "v2")
	sink := &Collector{}
	j := NewJoin(JoinConfig{
		Left: JoinSideConfig{
			Keys: []EvalFunc{
				MustCompile(gsql.MustParseExpr("ts"), r, nil),
				MustCompile(gsql.MustParseExpr("k"), r, nil),
			},
			Width: 3, TemporalIdx: 0,
		},
		Right: JoinSideConfig{
			Keys: []EvalFunc{
				MustCompile(gsql.MustParseExpr("ts"), r, nil),
				MustCompile(gsql.MustParseExpr("k"), r, nil),
			},
			Width: 3, TemporalIdx: 0,
		},
		Type:     gsql.JoinInner,
		Residual: MustCompile(gsql.MustParseExpr("v < v2"), comb, nil),
		Projs: []EvalFunc{
			MustCompile(gsql.MustParseExpr("v"), comb, nil),
			MustCompile(gsql.MustParseExpr("v2"), comb, nil),
		},
		Out: sink,
	})
	j.LeftIn().Push(Tuple{u(1), u(7), u(10)})
	j.RightIn().Push(Tuple{u(1), u(7), u(20)}) // v < v2 passes
	j.RightIn().Push(Tuple{u(1), u(7), u(5)})  // fails residual
	j.LeftIn().Flush()
	j.RightIn().Flush()
	if len(sink.Rows) != 1 || !sink.Rows[0][1].Equal(u(20)) {
		t.Fatalf("rows = %v", sink.Rows)
	}
}

func TestUnionFlushWaitsForAllPorts(t *testing.T) {
	sink := &Collector{}
	union := NewUnion(3, sink)
	union.Port(0).Push(Tuple{u(1)})
	union.Port(0).Flush()
	union.Port(1).Flush()
	if sink.Flushed {
		t.Fatal("union flushed early")
	}
	union.Port(2).Push(Tuple{u(2)})
	union.Port(2).Flush()
	if !sink.Flushed || len(sink.Rows) != 2 {
		t.Fatalf("flushed=%v rows=%v", sink.Flushed, sink.Rows)
	}
}

func TestUnionMinWatermark(t *testing.T) {
	counter := &advanceCounter{}
	union := NewUnion(2, counter)
	// No forward until every port has advanced.
	union.Port(0).Advance(60)
	if counter.n != 0 {
		t.Fatalf("forwarded before all ports advanced: %d", counter.n)
	}
	union.Port(1).Advance(60)
	if counter.n != 1 || counter.last != 60 {
		t.Fatalf("after both at 60: n=%d last=%d", counter.n, counter.last)
	}
	// One port moving ahead does not raise the minimum.
	union.Port(0).Advance(120)
	if counter.n != 1 {
		t.Fatalf("min should hold at 60: n=%d", counter.n)
	}
	union.Port(1).Advance(120)
	if counter.n != 2 || counter.last != 120 {
		t.Fatalf("after both at 120: n=%d last=%d", counter.n, counter.last)
	}
	// A flushed port stops constraining the minimum.
	union.Port(0).Flush()
	union.Port(1).Advance(180)
	if counter.n != 3 || counter.last != 180 {
		t.Fatalf("flushed port should not hold watermark: n=%d last=%d", counter.n, counter.last)
	}
}

type advanceCounter struct {
	Discard
	n    int
	last uint64
}

func (a *advanceCounter) Advance(wm uint64) { a.n++; a.last = wm }

func TestKeyCollisionFreeProperty(t *testing.T) {
	// Distinct value vectors must produce distinct keys; equal ones
	// identical keys.
	f := func(a, b uint64, s1, s2 string) bool {
		k1 := Key([]sqlval.Value{u(a), sqlval.Str(s1)})
		k2 := Key([]sqlval.Value{u(b), sqlval.Str(s2)})
		if a == b && s1 == s2 {
			return k1 == k2
		}
		return k1 != k2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// String boundaries must not bleed: ("ab","c") != ("a","bc").
	if Key([]sqlval.Value{sqlval.Str("ab"), sqlval.Str("c")}) ==
		Key([]sqlval.Value{sqlval.Str("a"), sqlval.Str("bc")}) {
		t.Error("string boundary collision")
	}
	// Cross-kind equal numerics share keys (grouping equality).
	if Key([]sqlval.Value{u(5)}) != Key([]sqlval.Value{sqlval.Int(5)}) {
		t.Error("uint/int 5 should share a key")
	}
}

func TestTeeDuplicates(t *testing.T) {
	a, b := &Collector{}, &Collector{}
	tee := &Tee{Outs: []Consumer{a, b}}
	tee.Push(Tuple{u(1)})
	tee.Advance(5)
	tee.Flush()
	if len(a.Rows) != 1 || len(b.Rows) != 1 || !a.Flushed || !b.Flushed {
		t.Error("tee did not duplicate")
	}
}

func TestTupleWireSize(t *testing.T) {
	tp := Tuple{u(1), sqlval.Str("abc"), sqlval.Null}
	// 8 header + 9 + 6 + 1.
	if got := tp.WireSize(); got != 24 {
		t.Errorf("WireSize = %d, want 24", got)
	}
}
