package cluster

import (
	"fmt"
	"testing"

	"qap/internal/core"
	"qap/internal/exec"
	"qap/internal/gsql"
	"qap/internal/netgen"
	"qap/internal/optimizer"
	"qap/internal/plan"
	"qap/internal/schema"
	"qap/internal/sqlval"
)

const flowsQuery = `
query flows:
SELECT tb, srcIP, destIP, COUNT(*) as cnt
FROM TCP
GROUP BY time/60 as tb, srcIP, destIP`

const complexSet = flowsQuery + `
query heavy_flows:
SELECT tb, srcIP, max(cnt) as max_cnt
FROM flows
GROUP BY tb, srcIP

query flow_pairs:
SELECT S1.tb, S1.srcIP, S1.max_cnt, S2.max_cnt
FROM heavy_flows S1, heavy_flows S2
WHERE S1.srcIP = S2.srcIP and S1.tb = S2.tb+1`

const suspiciousQuery = `
query suspicious:
SELECT tb, srcIP, destIP, srcPort, destPort,
       OR_AGGR(flags) as orflag, COUNT(*) as cnt, SUM(len) as bytes
FROM TCP
GROUP BY time/60 as tb, srcIP, destIP, srcPort, destPort
HAVING OR_AGGR(flags) = #PATTERN#`

func buildGraph(t testing.TB, queries string) *plan.Graph {
	t.Helper()
	g, err := plan.Build(schema.MustParse(netgen.SchemaDDL), gsql.MustParseQuerySet(queries))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func smallTrace(t testing.TB) *netgen.Trace {
	t.Helper()
	cfg := netgen.DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 180, 400
	cfg.SrcHosts, cfg.DstHosts = 100, 60
	return netgen.Generate(cfg)
}

var testParams = exec.Params{"PATTERN": sqlval.Uint(netgen.AttackPattern)}

func runConfig(t testing.TB, g *plan.Graph, ps core.Set, o optimizer.Options, tr *netgen.Trace) *Result {
	t.Helper()
	p, err := optimizer.Build(g, ps, o)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(p, DefaultCosts(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run("TCP", tr.Packets)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func centralized(t testing.TB, g *plan.Graph, tr *netgen.Trace) *Result {
	t.Helper()
	o := optimizer.Options{Hosts: 1, PartitionsPerHost: 1, PartialAgg: false}
	return runConfig(t, g, nil, o, tr)
}

func rowMultiset(rows []exec.Tuple) map[string]int {
	m := make(map[string]int, len(rows))
	for _, r := range rows {
		m[exec.Key(r)]++
	}
	return m
}

func sameOutputs(t *testing.T, name string, a, b []exec.Tuple) {
	t.Helper()
	ma, mb := rowMultiset(a), rowMultiset(b)
	if len(a) != len(b) {
		t.Errorf("%s: row count %d vs %d", name, len(a), len(b))
		return
	}
	for k, c := range ma {
		if mb[k] != c {
			t.Errorf("%s: multiset mismatch for key %q: %d vs %d", name, k, c, mb[k])
			return
		}
	}
}

// TestDistributedEquivalence is the core correctness property of the
// whole system (the paper's partition-compatibility definition): for
// every strategy — naive round robin with per-partition partials,
// optimized per-host partials, suboptimal and optimal query-aware
// partitioning — the distributed outputs must equal the centralized
// run exactly.
func TestDistributedEquivalence(t *testing.T) {
	tr := smallTrace(t)
	querySets := []struct {
		name    string
		queries string
	}{
		{"flows", flowsQuery},
		{"complex", complexSet},
		{"suspicious", suspiciousQuery},
	}
	strategies := []struct {
		name string
		ps   string
		opts optimizer.Options
	}{
		{"naive-rr", "", optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopePartition}},
		{"optimized-rr", "", optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopeHost}},
		{"agnostic-central", "", optimizer.Options{Hosts: 3, PartitionsPerHost: 2, PartialAgg: false}},
		{"partitioned-srcip", "srcIP", optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopeHost}},
		{"partitioned-pair", "srcIP, destIP", optimizer.Options{Hosts: 2, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopeHost}},
		{"partitioned-subnet", "srcIP & 0xFFF0", optimizer.Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopeHost}},
	}
	for _, qs := range querySets {
		g := buildGraph(t, qs.queries)
		want := centralized(t, g, tr)
		for _, st := range strategies {
			t.Run(qs.name+"/"+st.name, func(t *testing.T) {
				var ps core.Set
				if st.ps != "" {
					ps = core.MustParseSet(st.ps)
				}
				got := runConfig(t, g, ps, st.opts, tr)
				for name, rows := range want.Outputs {
					sameOutputs(t, name, rows, got.Outputs[name])
				}
			})
		}
	}
}

func TestSuspiciousFlowsFiltered(t *testing.T) {
	tr := smallTrace(t)
	g := buildGraph(t, suspiciousQuery)
	res := centralized(t, g, tr)
	rows := res.Outputs["suspicious"]
	if len(rows) == 0 {
		t.Fatal("no suspicious flows found; trace should contain ~5%")
	}
	// Every emitted flow has the attack OR pattern.
	for _, r := range rows {
		or, _ := r[5].AsUint()
		if or != netgen.AttackPattern {
			t.Fatalf("row %v passed HAVING with orflag %#x", r, or)
		}
	}
	// And suspicious flows are a small fraction of all flows.
	gAll := buildGraph(t, `
query all_flows:
SELECT tb, srcIP, destIP, srcPort, destPort, COUNT(*) as cnt
FROM TCP GROUP BY time/60 as tb, srcIP, destIP, srcPort, destPort`)
	all := centralized(t, gAll, tr)
	frac := float64(len(rows)) / float64(len(all.Outputs["all_flows"]))
	if frac < 0.01 || frac > 0.25 {
		t.Errorf("suspicious fraction %.3f out of expected band", frac)
	}
}

func TestHashSplitterCoLocatesKeys(t *testing.T) {
	// Under (srcIP) partitioning, all packets of one srcIP land in the
	// same partition: per-partition flow counts must be complete, so
	// no two output rows share a group key.
	tr := smallTrace(t)
	g := buildGraph(t, flowsQuery)
	res := runConfig(t, g, core.MustParseSet("srcIP"),
		optimizer.Options{Hosts: 4, PartitionsPerHost: 2}, tr)
	seen := make(map[string]bool)
	for _, r := range res.Outputs["flows"] {
		k := exec.Key(r[:3])
		if seen[k] {
			t.Fatalf("group %v emitted twice: partitioning split a group", r)
		}
		seen[k] = true
	}
}

func TestNetworkLoadShape(t *testing.T) {
	// The headline claim (Figures 8-9): with round robin the
	// aggregator's network load grows with cluster size; with a
	// compatible partitioning it stays bounded by the output size.
	tr := smallTrace(t)
	g := buildGraph(t, suspiciousQuery)

	load := func(ps core.Set, hosts int, scope optimizer.Scope) float64 {
		res := runConfig(t, g, ps, optimizer.Options{
			Hosts: hosts, PartitionsPerHost: 2, PartialAgg: true, PartialScope: scope}, tr)
		return res.Metrics.NetLoad(0)
	}
	naive2 := load(nil, 2, optimizer.ScopePartition)
	naive4 := load(nil, 4, optimizer.ScopePartition)
	opt4 := load(nil, 4, optimizer.ScopeHost)
	part4 := load(core.MustParseSet("srcIP, destIP, srcPort, destPort"), 4, optimizer.ScopeHost)

	if load(nil, 1, optimizer.ScopePartition) != 0 {
		t.Error("single host exchanges no network traffic")
	}
	if naive4 <= naive2 {
		t.Errorf("naive network load should grow with hosts: %f vs %f", naive2, naive4)
	}
	if opt4 >= naive4 {
		t.Errorf("per-host partials should reduce load: optimized %f vs naive %f", opt4, naive4)
	}
	if part4 >= opt4 {
		t.Errorf("compatible partitioning should beat partials: %f vs %f", part4, opt4)
	}
	// Partitioned load is bounded by the (tiny) query output, far
	// below the partial-aggregate volume.
	if part4 > naive4/10 {
		t.Errorf("partitioned load not flat: %f vs naive %f", part4, naive4)
	}
}

func TestLeafLoadDrops(t *testing.T) {
	// Section 6.1: leaf CPU load drops as hosts are added, under every
	// configuration.
	tr := smallTrace(t)
	g := buildGraph(t, suspiciousQuery)
	cost := DefaultCosts()
	cost.CapacityPerSec = 2000
	leafLoad := func(hosts int) float64 {
		p := optimizer.MustBuild(g, nil, optimizer.Options{
			Hosts: hosts, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopePartition})
		r, err := New(p, cost, testParams)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run("TCP", tr.Packets)
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics.LeafCPULoad(0)
	}
	l1, l4 := leafLoad(1), leafLoad(4)
	if l4 >= l1/2 {
		t.Errorf("leaf load should drop sharply: 1 host %.1f%%, 4 hosts %.1f%%", l1, l4)
	}
}

func TestMetricsAccounting(t *testing.T) {
	tr := smallTrace(t)
	g := buildGraph(t, flowsQuery)
	res := runConfig(t, g, nil, optimizer.Options{
		Hosts: 2, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopeHost}, tr)
	m := res.Metrics
	if m.DurationSec != 180 {
		t.Errorf("duration = %f", m.DurationSec)
	}
	// Host 1's sub-aggregate output crosses to host 0 (network);
	// host 0's own sub-aggregate reaches the central union via IPC.
	h0 := m.Hosts[0]
	if h0.NetTuplesIn <= 0 {
		t.Errorf("no network arrivals at aggregator: %+v", h0)
	}
	if h0.IPCTuplesIn <= 0 {
		t.Errorf("no IPC arrivals at aggregator: %+v", h0)
	}
	if h0.NetBytesIn <= h0.NetTuplesIn {
		t.Error("bytes should exceed tuple count")
	}
	// Leaf hosts send but receive nothing over the network.
	if m.Hosts[1].NetTuplesIn != 0 {
		t.Errorf("leaf host received network tuples: %+v", m.Hosts[1])
	}
	// Every host processed tuples.
	for h, hm := range m.Hosts {
		if hm.Tuples == 0 || hm.CPUUnits == 0 {
			t.Errorf("host %d idle: %+v", h, hm)
		}
	}
	if s := m.String(); s == "" {
		t.Error("empty metrics string")
	}
}

func TestRunUnknownStream(t *testing.T) {
	g := buildGraph(t, flowsQuery)
	p := optimizer.MustBuild(g, nil, optimizer.Options{Hosts: 1, PartitionsPerHost: 1})
	r, err := New(p, DefaultCosts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run("UDP", nil); err == nil {
		t.Error("unknown stream should fail")
	}
}

func TestUnboundParamFailsAtCompile(t *testing.T) {
	g := buildGraph(t, suspiciousQuery)
	p := optimizer.MustBuild(g, nil, optimizer.Options{Hosts: 1, PartitionsPerHost: 1})
	if _, err := New(p, DefaultCosts(), nil); err == nil {
		t.Error("missing #PATTERN# should fail at compile time")
	}
}

func TestAvgSplitEquivalence(t *testing.T) {
	// AVG decomposes into partial sums and counts; the merged result
	// must equal the centralized AVG.
	tr := smallTrace(t)
	g := buildGraph(t, `
query avg_len:
SELECT tb, srcIP, AVG(len) as alen, COUNT(*) as cnt
FROM TCP GROUP BY time/60 as tb, srcIP
HAVING AVG(len) > 500`)
	want := centralized(t, g, tr)
	got := runConfig(t, g, nil, optimizer.Options{
		Hosts: 3, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopeHost}, tr)
	// Partial sums reassociate floating-point addition, so AVG values
	// may differ in the last ulp: compare per group with tolerance.
	wr, gr := want.Outputs["avg_len"], got.Outputs["avg_len"]
	if len(wr) == 0 {
		t.Fatal("AVG test produced no rows; workload too small")
	}
	if len(wr) != len(gr) {
		t.Fatalf("row counts differ: %d vs %d", len(wr), len(gr))
	}
	type row struct {
		avg float64
		cnt uint64
	}
	index := make(map[string]row, len(wr))
	for _, r := range wr {
		a, _ := r[2].AsFloat()
		c, _ := r[3].AsUint()
		index[exec.Key(r[:2])] = row{a, c}
	}
	for _, r := range gr {
		wantRow, ok := index[exec.Key(r[:2])]
		if !ok {
			t.Fatalf("unexpected group %v", r)
		}
		a, _ := r[2].AsFloat()
		c, _ := r[3].AsUint()
		if c != wantRow.cnt {
			t.Fatalf("group %v count %d != %d", r[:2], c, wantRow.cnt)
		}
		if diff := a - wantRow.avg; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("group %v avg %g != %g", r[:2], a, wantRow.avg)
		}
	}
}

func TestJitterSelfJoinRuns(t *testing.T) {
	// The Section 6.2 jitter query: delays between packets of the same
	// flow in the same second.
	tr := smallTrace(t)
	g := buildGraph(t, `
query jitter:
SELECT S1.time, S1.srcIP, S1.destIP, S2.time - S1.time AS delay
FROM TCP S1, TCP S2
WHERE S1.time = S2.time AND S1.srcIP = S2.srcIP AND S1.destIP = S2.destIP
  AND S1.srcPort = S2.srcPort AND S1.destPort = S2.destPort`)
	want := centralized(t, g, tr)
	got := runConfig(t, g, core.MustParseSet("srcIP, destIP, srcPort, destPort"),
		optimizer.Options{Hosts: 4, PartitionsPerHost: 2}, tr)
	sameOutputs(t, "jitter", want.Outputs["jitter"], got.Outputs["jitter"])
	if len(want.Outputs["jitter"]) == 0 {
		t.Error("jitter produced no rows")
	}
}

func ExampleMetrics_CPULoad() {
	m := &Metrics{Hosts: make([]HostMetrics, 1), DurationSec: 10, Capacity: 100}
	m.Hosts[0].CPUUnits = 500
	fmt.Println(m.CPULoad(0))
	// Output: 50
}
