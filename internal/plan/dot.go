package plan

import (
	"fmt"
	"strings"
)

// DOT renders the logical query DAG in Graphviz format, one node per
// query with operator-kind shapes (boxes for sources, ellipses for
// select/project, houses for aggregations, diamonds for joins).
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph logical {\n  rankdir=BT;\n")
	for _, n := range g.Nodes {
		shape := "ellipse"
		switch n.Kind {
		case KindSource:
			shape = "box"
		case KindAggregate:
			shape = "house"
		case KindJoin:
			shape = "diamond"
		}
		fmt.Fprintf(&b, "  n%d [shape=%s, label=%q];\n", n.ID, shape, dotLabel(n))
	}
	for _, n := range g.Nodes {
		for _, in := range n.Inputs {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", in.ID, n.ID)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func dotLabel(n *Node) string {
	switch n.Kind {
	case KindSource:
		return n.Stream.Name
	case KindAggregate:
		var gb []string
		for _, g := range n.GroupBy {
			gb = append(gb, g.Expr.String())
		}
		return fmt.Sprintf("γ %s\n(%s)", n.QueryName, strings.Join(gb, ", "))
	case KindJoin:
		return "⋈ " + n.QueryName
	default:
		label := "σ/π " + n.QueryName
		if n.Filter != nil {
			label += "\n" + n.Filter.String()
		}
		return label
	}
}
