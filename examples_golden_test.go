package qap_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"qap"
	"qap/internal/difftest"
)

var update = flag.Bool("update", false, "rewrite golden files")

// The end-to-end golden tests pin the exact output of the two example
// workloads — examples/attackdetect and examples/multistream — at
// tier-1-friendly trace sizes. The canonical rendering (sorted rows
// plus logical node counts) is the same one the differential oracle
// compares, so a golden change means the engine's observable behavior
// changed, not just a plan detail. Regenerate deliberately with:
//
//	go test -run TestGolden -update .

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	golden := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (re-run with -update if the change is intended):\n%s",
			golden, diffHint(string(want), got))
	}
}

func diffHint(want, got string) string {
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	i := 0
	for i < n && want[i] == got[i] {
		i++
	}
	lo := i - 80
	if lo < 0 {
		lo = 0
	}
	w, g := want[lo:], got[lo:]
	if len(w) > 200 {
		w = w[:200]
	}
	if len(g) > 200 {
		g = g[:200]
	}
	return "golden: ..." + w + "\ngot:    ..." + g
}

// TestGoldenAttackDetect mirrors examples/attackdetect: the Section
// 6.1 suspicious-flow aggregation over a trace with a 5% attack mix,
// deployed query-aware on four hosts. The round-robin deployment must
// produce the identical canonical result (the example's whole point is
// that only the load profile differs).
func TestGoldenAttackDetect(t *testing.T) {
	const query = `
query suspicious:
SELECT tb, srcIP, destIP, srcPort, destPort,
       OR_AGGR(flags) AS orflag, COUNT(*) AS cnt, SUM(len) AS bytes
FROM TCP
GROUP BY time/60 AS tb, srcIP, destIP, srcPort, destPort
HAVING OR_AGGR(flags) = #PATTERN#
`
	sys, err := qap.Load(qap.TCPSchemaDDL, query)
	if err != nil {
		t.Fatal(err)
	}
	analysis, err := sys.Analyze(nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := qap.DefaultTraceConfig()
	cfg.DurationSec = 30
	cfg.PacketsPerSec = 400
	cfg.AttackFraction = 0.05
	trace := qap.GenerateTrace(cfg)
	params := map[string]qap.Value{"PATTERN": qap.Uint(qap.AttackPattern)}

	run := func(ps qap.Set) string {
		dep, err := sys.Deploy(qap.DeployConfig{Hosts: 4, Partitioning: ps, Params: params})
		if err != nil {
			t.Fatal(err)
		}
		res, err := dep.Run("TCP", trace.Packets)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Outputs["suspicious"]) == 0 {
			t.Fatal("trace produced no suspicious flows; the golden would pin a trivial run")
		}
		return difftest.Canonical(res)
	}
	aware := run(analysis.Best)
	if agnostic := run(nil); agnostic != aware {
		t.Error("round-robin and query-aware deployments disagree on the example workload")
	}
	checkGolden(t, "attackdetect.golden", aware)
}

// TestGoldenMultistream mirrors examples/multistream: two input
// streams with per-stream partitioning sets and a cross-stream join on
// differently named attributes.
func TestGoldenMultistream(t *testing.T) {
	const ddl = `
TCP(time increasing, srcIP, destIP, srcPort, destPort, len, flags, seq)
DNS(time increasing, clientIP, server, clientPort, qtype, size, flags, qseq)`
	const queries = `
query tcp_flows:
SELECT tb, srcIP, destIP, COUNT(*) AS pkts, SUM(len) AS bytes
FROM TCP GROUP BY time/60 AS tb, srcIP, destIP

query dns_volume:
SELECT tb, clientIP, COUNT(*) AS lookups
FROM DNS GROUP BY time/60 AS tb, clientIP

query lookups_then_traffic:
SELECT TCP.time, TCP.srcIP, DNS.server, TCP.len + DNS.size AS effort
FROM TCP JOIN DNS
WHERE TCP.time = DNS.time AND TCP.srcIP = DNS.clientIP
  AND TCP.srcPort = DNS.clientPort AND TCP.seq = DNS.qseq`

	sys, err := qap.Load(ddl, queries)
	if err != nil {
		t.Fatal(err)
	}
	per, err := sys.AnalyzePerStream(nil)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := sys.Deploy(qap.DeployConfig{
		Hosts:     4,
		PerStream: per.Sets,
		Costs:     qap.CostConfig{CapacityPerSec: 6000},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := qap.DefaultTraceConfig()
	cfg.DurationSec = 30
	cfg.PacketsPerSec = 500
	cfg.SrcHosts, cfg.DstHosts = 500, 300
	tcp := qap.GenerateTrace(cfg)
	cfg.Seed = 9
	dns := qap.GenerateTrace(cfg)

	res, err := dep.RunStreams(map[string][]qap.Packet{
		"TCP": tcp.Packets,
		"DNS": dns.Packets,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"tcp_flows", "dns_volume", "lookups_then_traffic"} {
		if len(res.Outputs[name]) == 0 {
			t.Fatalf("query %s produced no rows; the golden would pin a trivial run", name)
		}
	}
	checkGolden(t, "multistream.golden", difftest.Canonical(res))
}
