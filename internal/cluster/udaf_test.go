package cluster

import (
	"math"
	"testing"

	"qap/internal/exec"
	"qap/internal/optimizer"
)

// TestMomentSplitEquivalence checks VARIANCE and STDDEV through the
// sub/super-aggregate path: partials are (sum, sumsq, count) triples
// merged centrally, and the reconstructed values must match the
// centralized aggregation.
func TestMomentSplitEquivalence(t *testing.T) {
	tr := smallTrace(t)
	g := buildGraph(t, `
query len_stats:
SELECT tb, srcIP, VARIANCE(len) AS v, STDDEV(len) AS s, AVG(len) AS a
FROM TCP GROUP BY time/60 AS tb, srcIP
HAVING STDDEV(len) > 100`)
	want := centralized(t, g, tr)
	got := runConfig(t, g, nil, optimizer.Options{
		Hosts: 3, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopeHost}, tr)

	wr, gr := want.Outputs["len_stats"], got.Outputs["len_stats"]
	if len(wr) == 0 {
		t.Fatal("no rows; HAVING too strict for the trace")
	}
	if len(wr) != len(gr) {
		t.Fatalf("row counts differ: %d vs %d", len(wr), len(gr))
	}
	index := make(map[string][]float64, len(wr))
	for _, r := range wr {
		v, _ := r[2].AsFloat()
		s, _ := r[3].AsFloat()
		a, _ := r[4].AsFloat()
		index[exec.Key(r[:2])] = []float64{v, s, a}
	}
	for _, r := range gr {
		wantVals, ok := index[exec.Key(r[:2])]
		if !ok {
			t.Fatalf("unexpected group %v", r)
		}
		for i, col := range []int{2, 3, 4} {
			f, _ := r[col].AsFloat()
			if rel := math.Abs(f-wantVals[i]) / math.Max(math.Abs(wantVals[i]), 1); rel > 1e-6 {
				t.Fatalf("group %v col %d: %g vs %g", r[:2], col, f, wantVals[i])
			}
		}
	}
}

// TestHLLSplitEquivalence checks APPROX_COUNT_DISTINCT through the
// sub/super path: sketches merge losslessly, so the distributed
// estimate must equal the centralized one exactly.
func TestHLLSplitEquivalence(t *testing.T) {
	tr := smallTrace(t)
	g := buildGraph(t, `
query fanout:
SELECT tb, srcIP, APPROX_COUNT_DISTINCT(destIP) AS dests, COUNT(*) AS pkts
FROM TCP GROUP BY time/60 AS tb, srcIP`)
	want := centralized(t, g, tr)
	got := runConfig(t, g, nil, optimizer.Options{
		Hosts: 4, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopePartition}, tr)
	sameOutputs(t, "fanout", want.Outputs["fanout"], got.Outputs["fanout"])
	if len(want.Outputs["fanout"]) == 0 {
		t.Fatal("no rows")
	}
	// And the estimates are in the right ballpark against the exact
	// distinct count.
	exact := centralized(t, buildGraph(t, `
query fanout:
SELECT tb, srcIP, COUNT_DISTINCT(destIP) AS dests, COUNT(*) AS pkts
FROM TCP GROUP BY time/60 AS tb, srcIP`), tr)
	exactIdx := make(map[string]uint64)
	for _, r := range exact.Outputs["fanout"] {
		d, _ := r[2].AsUint()
		exactIdx[exec.Key(r[:2])] = d
	}
	for _, r := range got.Outputs["fanout"] {
		est, _ := r[2].AsUint()
		truth := exactIdx[exec.Key(r[:2])]
		if truth == 0 {
			t.Fatalf("missing exact value for %v", r[:2])
		}
		diff := math.Abs(float64(est) - float64(truth))
		// Tiny groups can lose a register to a collision; allow ±2
		// absolute there and 35% relative elsewhere.
		if diff > 2 && diff/float64(truth) > 0.35 {
			t.Fatalf("estimate %d vs exact %d (error %.0f%%)", est, truth, 100*diff/float64(truth))
		}
	}
}

// TestHolisticStaysCentralButCorrect: COUNT_DISTINCT cannot split, so
// the optimizer centralizes it; results still match under round robin.
func TestHolisticStaysCentralButCorrect(t *testing.T) {
	tr := smallTrace(t)
	g := buildGraph(t, `
query fanout:
SELECT tb, srcIP, COUNT_DISTINCT(destIP) AS dests
FROM TCP GROUP BY time/60 AS tb, srcIP`)
	p := optimizer.MustBuild(g, nil, optimizer.Options{
		Hosts: 3, PartitionsPerHost: 2, PartialAgg: true, PartialScope: optimizer.ScopeHost})
	if p.CountKind(optimizer.OpAggSub) != 0 {
		t.Fatal("holistic aggregate must not split")
	}
	want := centralized(t, g, tr)
	r, err := New(p, DefaultCosts(), testParams)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Run("TCP", tr.Packets)
	if err != nil {
		t.Fatal(err)
	}
	sameOutputs(t, "fanout", want.Outputs["fanout"], got.Outputs["fanout"])
}
