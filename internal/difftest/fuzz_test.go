package difftest

import (
	"os"
	"path/filepath"
	"testing"

	"qap"
	"qap/internal/netgen"
	"qap/internal/plan"
	"qap/internal/qgen"
)

// FuzzDifferential feeds arbitrary query text straight into the
// equivalence oracle: whatever parses and plans over the TCP schema
// must produce identical canonical output under every plan shape. The
// fuzzer therefore explores the space of valid-but-weird query sets
// (mutations of the seed corpus that still parse), hunting for inputs
// where the partitioned rewrite diverges from the centralized truth.
//
// Guards keep each execution bounded: the oracle itself runs hundreds
// of times per fuzz session, so inputs that are too large, too deeply
// windowed, or too join-heavy are skipped rather than run slowly.
func FuzzDifferential(f *testing.F) {
	for _, name := range []string{"figure1.gsql", "section62.gsql"} {
		b, err := os.ReadFile(filepath.Join("..", "..", "examples", "queries", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(b), int64(1))
	}
	f.Add(qap.SuspiciousFlowsQuery, int64(2))
	f.Add(qap.QuerySetSection62, int64(3))
	for _, seed := range []int64{4, 5} {
		f.Add(qgen.Generate(qgen.Config{Seed: seed}).Queries, seed)
	}

	f.Fuzz(func(t *testing.T, queries string, seed int64) {
		if len(queries) > 4096 {
			t.Skip("query text too large for a per-input differential run")
		}
		sys, err := qap.Load(netgen.SchemaDDL, queries)
		if err != nil {
			return // not a valid query set: the parser fuzzer's territory
		}
		joins, panes := 0, uint64(0)
		for _, n := range sys.Graph.QueryNodes() {
			if n.Kind == plan.KindJoin {
				joins++
			}
			if n.WindowPanes > panes {
				panes = n.WindowPanes
			}
		}
		if len(sys.Graph.Nodes) > 9 || joins > 2 || panes > 16 {
			t.Skip("query set too large for a per-input differential run")
		}
		trace := netgen.Config{
			Seed:            seed,
			DurationSec:     3,
			PacketsPerSec:   50,
			SrcHosts:        1 + int(uint64(seed)%7),
			DstHosts:        5,
			ZipfS:           1.3,
			MeanFlowPackets: 1,
			Ports:           64,
		}
		rep, err := CheckQueries(netgen.SchemaDDL, queries, trace, Options{
			Hosts: []int{1, 2}, Workers: []int{1, 2},
		})
		if err != nil {
			// Loaded but not runnable (e.g. an unbound parameter):
			// consistently rejected, nothing to compare.
			return
		}
		if !rep.OK() {
			t.Fatalf("differential mismatch:\n%s", rep)
		}
	})
}
