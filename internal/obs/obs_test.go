package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func sampleReport() *RunReport {
	return &RunReport{
		SchemaVersion:  SchemaVersion,
		DurationSec:    120,
		CapacityPerSec: 6000,
		Plan: &PlanInfo{
			Hosts: 4, Partitions: 8, PartitionsPerHost: 2,
			Partitioning: "( srcIP )", Operators: 2,
		},
		Nodes: []NodeReport{
			{ID: 1, Kind: "aggregate", Query: "flows", Host: 0, Partition: -1,
				OpStats:  OpStats{RowsIn: 100, RowsOut: 10, Advances: 5, Flushes: 1, CPUUnits: 120.5},
				PassRate: 0.1},
			{ID: 0, Kind: "scan", Query: "TCP", Host: 0, Partition: 0,
				OpStats:  OpStats{RowsIn: 100, RowsOut: 100, CPUUnits: 100},
				PassRate: 1},
		},
		Hosts: []HostReport{
			{Host: 0, CPUUnits: 220.5, CPULoadPct: 12.5, Tuples: 200, NetTuplesIn: 3, NetBytesIn: 90},
		},
		Timing: &Timing{Workers: 8, Engine: "parallel", WallNanos: 123456},
	}
}

// TestOpStatsAdd checks the shard-merge arithmetic.
func TestOpStatsAdd(t *testing.T) {
	a := OpStats{RowsIn: 1, RowsOut: 2, Advances: 3, Flushes: 4, CPUUnits: 5, NetTuplesIn: 6, NetBytesIn: 7, IPCTuplesIn: 8}
	b := a
	b.Add(&a)
	want := OpStats{RowsIn: 2, RowsOut: 4, Advances: 6, Flushes: 8, CPUUnits: 10, NetTuplesIn: 12, NetBytesIn: 14, IPCTuplesIn: 16}
	if b != want {
		t.Errorf("Add: got %+v, want %+v", b, want)
	}
}

// TestJSONDeterministic: two renderings of the same report are
// byte-identical, the document is valid JSON, and the nondeterministic
// section is exactly the top-level "timing" key.
func TestJSONDeterministic(t *testing.T) {
	r := sampleReport()
	a, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two renderings of the same report differ")
	}
	if !json.Valid(a) {
		t.Error("report is not valid JSON")
	}

	var doc map[string]json.RawMessage
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["timing"]; !ok {
		t.Error("timing section missing")
	}

	// Same report with different timing: canonical forms must match.
	r2 := sampleReport()
	r2.Timing = &Timing{Workers: 1, Engine: "sequential", WallNanos: 999}
	c1, _ := r.Canonical().JSON()
	c2, _ := r2.Canonical().JSON()
	if !bytes.Equal(c1, c2) {
		t.Error("canonical reports differ when only timing differs")
	}
	if _, ok := jsonKeys(t, c1)["timing"]; ok {
		t.Error("canonical report still contains a timing key")
	}
}

func jsonKeys(t *testing.T, b []byte) map[string]json.RawMessage {
	t.Helper()
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

// TestSearchStatsNanosExcluded: the wall-clock spans never reach the
// JSON encoding.
func TestSearchStatsNanosExcluded(t *testing.T) {
	s := SearchReport{SearchStats: SearchStats{Enumerated: 3, EnumerateNanos: 42, CostNanos: 42}}
	b, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "42") {
		t.Errorf("nanos leaked into JSON: %s", b)
	}
}

// TestExecBenchReportJSON: the batched-vs-scalar bench report
// round-trips through JSON with its gate verdict intact.
func TestExecBenchReportJSON(t *testing.T) {
	r := &ExecBenchReport{
		SchemaVersion: SchemaVersion,
		Name:          "exec",
		Config:        BenchConfig{RatePPS: 2000, DurationSec: 60, MaxHosts: 1, Seed: 1, Workers: 1},
		Rows: []ExecBenchRow{
			{BatchSize: 1, NanosPerRun: 100, RowsPerSec: 1000, BytesPerRun: 4096, AllocsPerRun: 64,
				SpeedupVsScalar: 1, AllocRatioVsScalar: 1},
			{BatchSize: 64, NanosPerRun: 40, RowsPerSec: 2500, BytesPerRun: 1024, AllocsPerRun: 8,
				SpeedupVsScalar: 2.5, AllocRatioVsScalar: 0.125},
		},
		RowsPerRun:       1000,
		RunsPerBatchSize: 3,
		GateMinSpeedup:   2, GateMaxAllocRatio: 0.25, GateMet: true,
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back ExecBenchReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, &back) {
		t.Errorf("round trip changed the report:\n got %+v\nwant %+v", &back, r)
	}
	for _, key := range []string{"gate_met", "gate_min_speedup", "gate_max_alloc_ratio", "batch_size"} {
		if !strings.Contains(string(b), `"`+key+`"`) {
			t.Errorf("missing %q key in JSON: %s", key, b)
		}
	}
}

// TestPrometheusRendering: deterministic ordering (nodes sorted by ID
// even when the input slice is not) and well-formed families.
func TestPrometheusRendering(t *testing.T) {
	r := sampleReport()
	out := r.Prometheus()
	if out != r.Prometheus() {
		t.Error("two renderings differ")
	}
	scanIdx := strings.Index(out, `qap_node_rows_in{id="0"`)
	aggIdx := strings.Index(out, `qap_node_rows_in{id="1"`)
	if scanIdx < 0 || aggIdx < 0 || scanIdx > aggIdx {
		t.Errorf("node lines missing or unsorted: scan@%d agg@%d", scanIdx, aggIdx)
	}
	for _, want := range []string{
		"# TYPE qap_node_rows_in counter",
		"# TYPE qap_host_cpu_load_pct gauge",
		`qap_host_tuples{host="0"} 200`,
		"qap_timing_wall_nanos 123456",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in rendering:\n%s", want, out)
		}
	}
	// No search section configured: its families must be absent.
	if strings.Contains(out, "qap_search_") {
		t.Error("unexpected search metrics")
	}
}
