// Command qap-bench regenerates the data behind every measured figure
// of the paper's evaluation (Figures 8, 9, 10, 11, 13, 14) and prints
// the same series as text tables.
//
// Usage:
//
//	qap-bench [-fig 8|10|13|all] [-rate pps] [-duration sec]
//	          [-hosts n] [-leaf]
//
// A figure number selects the experiment that produces it (CPU and
// network figures come from the same sweep: 8 prints 8+9, 10 prints
// 10+11, 13 prints 13+14).
//
// Reported numbers are deterministic for any -workers value; the
// determinism contract is machine-enforced by cmd/qap-vet, and the
// wall-clock reads below are quarantined under the report's "timing"
// key.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"qap"
	"qap/internal/obs"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 8, 9, 10, 11, 13, 14, or all")
	rate := flag.Int("rate", 1500, "trace packet rate (packets/sec)")
	duration := flag.Int("duration", 300, "trace duration (sec)")
	hosts := flag.Int("hosts", 4, "maximum cluster size")
	seed := flag.Int64("seed", 1, "trace random seed")
	leaf := flag.Bool("leaf", false, "also print the Section 6.1 leaf-load series")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulator worker goroutines (1 = sequential engine; results are identical)")
	benchOut := flag.String("bench-out", "", "also write each experiment's machine-readable BENCH_<name>.json into this directory")
	flag.Parse()

	cfg := qap.DefaultExperimentConfig()
	cfg.Trace.Seed = *seed
	cfg.Trace.PacketsPerSec = *rate
	cfg.Trace.DurationSec = *duration
	cfg.MaxHosts = *hosts
	cfg.Workers = *workers

	type experiment struct {
		name string
		ids  []string
		run  func(qap.ExperimentConfig) (*qap.Figure, *qap.Figure, error)
	}
	experiments := []experiment{
		{"fig8_9", []string{"8", "9"}, qap.Figures8and9},
		{"fig10_11", []string{"10", "11"}, qap.Figures10and11},
		{"fig13_14", []string{"13", "14"}, qap.Figures13and14},
	}

	ran := false
	for _, ex := range experiments {
		if *fig != "all" && *fig != ex.ids[0] && *fig != ex.ids[1] {
			continue
		}
		ran = true
		started := time.Now() //qap:allow walltime -- wall time quarantined in obs.Timing
		cpu, net, err := ex.run(cfg)
		if err != nil {
			fatal(err)
		}
		wall := time.Since(started) //qap:allow walltime -- wall time quarantined in obs.Timing
		fmt.Println(cpu.Table())
		fmt.Println(net.Table())
		if *benchOut != "" {
			writeBench(*benchOut, ex.name, cfg, wall, cpu, net)
		}
	}
	if !ran {
		fatal(fmt.Errorf("unknown figure %q (use 8, 9, 10, 11, 13, 14, or all)", *fig))
	}

	if *leaf {
		started := time.Now() //qap:allow walltime -- wall time quarantined in obs.Timing
		loads, err := qap.LeafLoads(cfg)
		if err != nil {
			fatal(err)
		}
		wall := time.Since(started) //qap:allow walltime -- wall time quarantined in obs.Timing
		fmt.Println("Section 6.1 leaf-node CPU load (Naive configuration):")
		fmt.Printf("%8s  %10s\n", "# nodes", "leaf CPU %")
		hosts := make([]int, len(loads))
		for i, l := range loads {
			fmt.Printf("%8d  %10.1f\n", i+1, l)
			hosts[i] = i + 1
		}
		if *benchOut != "" {
			leafFig := &qap.Figure{
				ID: "leaf", Title: "Leaf-node CPU load (Naive)", Metric: "CPU load (%)",
				Hosts:  hosts,
				Series: []qap.Series{{Name: "Naive", Values: loads}},
			}
			writeBench(*benchOut, "leaf", cfg, wall, leafFig)
		}
	}
}

// writeBench emits one experiment's BENCH_<name>.json: the figure
// series (deterministic) plus the wall-clock cost of producing them.
func writeBench(dir, name string, cfg qap.ExperimentConfig, wall time.Duration, figs ...*qap.Figure) {
	rep := &obs.BenchReport{
		SchemaVersion: obs.SchemaVersion,
		Name:          name,
		Config: obs.BenchConfig{
			RatePPS:     cfg.Trace.PacketsPerSec,
			DurationSec: cfg.Trace.DurationSec,
			MaxHosts:    cfg.MaxHosts,
			Seed:        cfg.Trace.Seed,
			Workers:     cfg.Workers,
		},
		WallNanos: int64(wall),
	}
	runs := 0
	for _, f := range figs {
		bf := obs.BenchFigure{ID: f.ID, Title: f.Title, Metric: f.Metric, Hosts: f.Hosts}
		for _, s := range f.Series {
			bf.Series = append(bf.Series, obs.BenchSeries{Name: s.Name, Values: s.Values})
		}
		rep.Figures = append(rep.Figures, bf)
	}
	// The CPU and network figures of one experiment come from the same
	// sweep, so the run count is one figure's series x cluster sizes.
	if len(figs) > 0 {
		runs = len(figs[0].Series) * len(figs[0].Hosts)
	}
	if sec := wall.Seconds(); sec > 0 {
		packets := float64(runs) * float64(cfg.Trace.PacketsPerSec) * float64(cfg.Trace.DurationSec)
		rep.SimulatedPacketsPerSec = packets / sec
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	if err := obs.WriteJSON(path, rep); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qap-bench:", err)
	os.Exit(1)
}
