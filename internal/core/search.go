package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"qap/internal/obs"
	"qap/internal/plan"
)

// Candidate is one explored partitioning option: the reconciled set
// for a subset of query nodes and its plan cost.
type Candidate struct {
	// Queries whose requirements this candidate's set was reconciled
	// from, in topological order.
	Queries []string
	Set     Set
	Cost    float64
	// Total is the sum-of-nodes network cost, used to break ties in
	// the max objective (two partitionings can leave the same worst
	// node while differing in overall traffic).
	Total float64
}

// Result is the outcome of the optimal-partitioning search.
type Result struct {
	// Best is the recommended partitioning set; it may be empty when
	// no partitioning beats fully centralized execution.
	Best Set
	// BestCost is the plan cost under Best.
	BestCost float64
	// CentralCost is the plan cost of the empty (query-agnostic)
	// partitioning — the centralized baseline.
	CentralCost float64
	// CentralTotal is the sum-of-nodes cost of the baseline.
	CentralTotal float64
	// PerNode holds every query node's inferred requirement.
	PerNode map[string]Requirement
	// Candidates lists all explored non-empty candidates sorted by
	// cost (then by coverage).
	Candidates []Candidate
	// Search holds the instrumentation counters of this run. Every
	// field except the wall-clock Nanos spans is deterministic for a
	// fixed worker count (and everything except PerWorkerEvals is
	// deterministic for any worker count).
	Search obs.SearchStats
}

// Options configures the search.
type Options struct {
	// MaxStates caps the number of node subsets explored; the
	// candidate space is pruned by the paper's leaf-first heuristics
	// and reconciliation failures, but a runaway guard is kept for
	// adversarial query sets.
	MaxStates int
	// AllowPerStreamSets is reserved for the paper's stated future
	// work (distinct partitioning per input stream); the analysis
	// currently rejects it to match the paper's assumption.
	AllowPerStreamSets bool
	// Workers fans the candidates' independent cost evaluations across
	// a worker pool; <= 1 evaluates inline. The result is identical for
	// any worker count.
	Workers int
}

// DefaultOptions returns the standard search options.
func DefaultOptions() Options { return Options{MaxStates: 1 << 18} }

// Optimize runs the paper's Section 4.2.2 algorithm: enumerate
// candidate partitioning sets by reconciling the requirements of
// growing subsets of query nodes, using dynamic programming over
// subsets, restricted by two heuristics — initial candidates are leaf
// nodes only, and a subset may only grow by a leaf or by an immediate
// parent of a member — and return the set minimizing the plan cost.
func Optimize(g *plan.Graph, stats Stats, opts Options) (*Result, error) {
	return optimize(g, stats, opts, NodeRequirement, nil)
}

// optimize is the search core; reqOf lets the per-stream analysis
// substitute stream-scoped requirements, and validFor restricts which
// candidate sets are usable (nil applies the shared-set rule: every
// attribute must exist in every source stream).
func optimize(g *plan.Graph, stats Stats, opts Options, reqOf func(*plan.Node) Requirement, validFor func(Set) bool) (*Result, error) {
	if opts.MaxStates <= 0 {
		opts.MaxStates = DefaultOptions().MaxStates
	}
	cm := NewCostModel(g, stats)
	res := &Result{PerNode: make(map[string]Requirement)}
	// Wall-clock spans are observational only: they are recorded in
	// Result.Search but never feed back into the search, and they are
	// excluded from the stats' JSON form.
	enumStart := time.Now() //qap:allow walltime -- wall time quarantined in SearchStats nanos

	// Constrained nodes: non-universal with a usable requirement.
	var nodes []*plan.Node
	reqs := make(map[*plan.Node]Requirement)
	for _, n := range g.QueryNodes() {
		r := reqOf(n)
		res.PerNode[n.QueryName] = r
		reqs[n] = r
		if !r.Universal && !r.Set.IsEmpty() {
			nodes = append(nodes, n)
		}
	}
	res.CentralCost = cm.PlanCost(nil)
	res.CentralTotal = cm.TotalCost(nil)
	if len(nodes) == 0 {
		res.Best, res.BestCost = nil, res.CentralCost
		res.Search.EnumerateNanos = int64(time.Since(enumStart)) //qap:allow walltime -- wall time quarantined in SearchStats nanos
		res.Search.CacheHits = cm.cacheHits
		return res, nil
	}
	if len(nodes) > 63 {
		return nil, fmt.Errorf("core: query set with %d constrained nodes exceeds the search limit of 63", len(nodes))
	}
	index := make(map[*plan.Node]int, len(nodes))
	for i, n := range nodes {
		index[n] = i
	}

	// Under the shared-set assumption every source stream is
	// partitioned by the same set, so a candidate is only usable when
	// each of its attributes exists in every source stream's schema;
	// OptimizePerStream substitutes a single-stream check.
	if validFor == nil {
		validFor = func(s Set) bool {
			for _, src := range g.Sources() {
				for _, e := range s {
					if _, _, ok := src.Stream.Lookup(e.Attr); !ok {
						return false
					}
				}
			}
			return true
		}
	}

	// A node is a "leaf" for the heuristic when no other constrained
	// node lies beneath it.
	isLeaf := make([]bool, len(nodes))
	for i, n := range nodes {
		isLeaf[i] = !hasConstrainedBelow(n, index)
	}
	// parents[i] = constrained nodes reachable upward from node i
	// through universal/unconstrained nodes; precomputed once.
	parents := make([][]int, len(nodes))
	for i, n := range nodes {
		seen := make(map[*plan.Node]bool)
		var walk func(*plan.Node)
		walk = func(x *plan.Node) {
			for _, p := range x.Parents {
				if seen[p] {
					continue
				}
				seen[p] = true
				if j, ok := index[p]; ok {
					parents[i] = append(parents[i], j)
				} else {
					walk(p)
				}
			}
		}
		walk(n)
	}

	type state struct {
		mask uint64
		set  Set
	}
	visited := make(map[uint64]bool)
	var frontier []state
	// Costs are not consulted during the expansion, only by the final
	// ranking, so record defers them: candidates are costed in one
	// (optionally parallel) batch after the frontier is exhausted.
	record := func(mask uint64, set Set) {
		var names []string
		for i, n := range nodes {
			if mask&(1<<uint(i)) != 0 {
				names = append(names, n.QueryName)
			}
		}
		res.Candidates = append(res.Candidates, Candidate{Queries: names, Set: set})
		res.Search.Enumerated++
	}

	for i, n := range nodes {
		if !isLeaf[i] {
			continue
		}
		mask := uint64(1) << uint(i)
		visited[mask] = true
		if !validFor(reqs[n].Set) {
			res.Search.Pruned++
			continue
		}
		frontier = append(frontier, state{mask, reqs[n].Set})
		record(mask, reqs[n].Set)
	}
	states := len(frontier)
	for len(frontier) > 0 && states < opts.MaxStates {
		var next []state
		for _, st := range frontier {
			// Expansion candidates: leaves, plus immediate constrained
			// parents of members. Indexed by node position and scanned
			// in ascending order — a map iterated here would make the
			// candidate list (and MaxStates truncation) vary run to run.
			cand := make([]bool, len(nodes))
			for j := range nodes {
				if isLeaf[j] && st.mask&(1<<uint(j)) == 0 {
					cand[j] = true
				}
			}
			for i := range nodes {
				if st.mask&(1<<uint(i)) == 0 {
					continue
				}
				for _, j := range parents[i] {
					if st.mask&(1<<uint(j)) == 0 {
						cand[j] = true
					}
				}
			}
			for j := range cand {
				if !cand[j] {
					continue
				}
				mask := st.mask | 1<<uint(j)
				if visited[mask] {
					continue
				}
				visited[mask] = true
				merged := Reconcile(st.set, reqs[nodes[j]].Set)
				if merged.IsEmpty() {
					res.Search.Pruned++
					continue
				}
				record(mask, merged)
				next = append(next, state{mask, merged})
				states++
				if states >= opts.MaxStates {
					break
				}
			}
			if states >= opts.MaxStates {
				break
			}
		}
		frontier = next
	}

	res.Search.EnumerateNanos = int64(time.Since(enumStart)) //qap:allow walltime -- wall time quarantined in SearchStats nanos
	costStart := time.Now()                                  //qap:allow walltime -- wall time quarantined in SearchStats nanos
	fillCandidateCosts(cm, res.Candidates, opts.Workers, &res.Search)
	res.Search.CostNanos = int64(time.Since(costStart)) //qap:allow walltime -- wall time quarantined in SearchStats nanos
	res.Search.CacheHits = cm.cacheHits

	rankAndSelect(res)
	return res, nil
}

// rankAndSelect orders the costed candidates (cost, then total, then
// coverage, then canonical set text) and picks Best: the top candidate
// when it strictly beats — or ties the max objective while beating the
// total-traffic tiebreak of — the centralized baseline. Shared by the
// full search and the incremental Reoptimize so re-costing can never
// diverge from a fresh search's selection logic.
func rankAndSelect(res *Result) {
	sort.SliceStable(res.Candidates, func(i, j int) bool {
		a, b := res.Candidates[i], res.Candidates[j]
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		if a.Total != b.Total {
			return a.Total < b.Total
		}
		if len(a.Queries) != len(b.Queries) {
			return len(a.Queries) > len(b.Queries)
		}
		return a.Set.String() < b.Set.String()
	})
	res.Best, res.BestCost = nil, res.CentralCost
	if len(res.Candidates) > 0 {
		top := res.Candidates[0]
		if top.Cost < res.CentralCost ||
			(top.Cost == res.CentralCost && top.Total < res.CentralTotal) {
			res.Best, res.BestCost = top.Set, top.Cost
		}
	}
}

// fillCandidateCosts computes every candidate's (Cost, Total). Many
// candidates reconcile to the same set, so distinct sets are evaluated
// once each; with workers > 1 the evaluations fan out index-strided
// across a static pool. Workers share no mutable state (rates are
// prefilled, each writes its own result slots), so the filled costs —
// and therefore the search result — are identical for any worker
// count. st (optional) receives the dedup and per-worker evaluation
// counters; the strided assignment makes PerWorkerEvals deterministic
// for a fixed worker count.
func fillCandidateCosts(cm *CostModel, cands []Candidate, workers int, st *obs.SearchStats) {
	cm.prefillRates()
	type slot struct {
		set  Set
		idxs []int
	}
	var order []string
	uniq := make(map[string]*slot)
	for i := range cands {
		key := cands[i].Set.String()
		s, ok := uniq[key]
		if !ok {
			s = &slot{set: cands[i].Set}
			uniq[key] = s
			order = append(order, key)
		}
		s.idxs = append(s.idxs, i)
	}
	results := make([][2]float64, len(order))
	eval := func(start, stride int) int64 {
		var n int64
		for u := start; u < len(order); u += stride {
			m, t := cm.evaluateUncached(uniq[order[u]].set)
			results[u] = [2]float64{m, t}
			n++
		}
		return n
	}
	var perWorker []int64
	if workers <= 1 || len(order) < 2 {
		perWorker = []int64{eval(0, 1)}
	} else {
		if workers > len(order) {
			workers = len(order)
		}
		perWorker = make([]int64, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(start int) {
				defer wg.Done()
				perWorker[start] = eval(start, workers)
			}(w)
		}
		wg.Wait()
	}
	if st != nil {
		st.UniqueSets = int64(len(order))
		st.Deduped = int64(len(cands) - len(order))
		st.PerWorkerEvals = perWorker
	}
	for u, key := range order {
		cm.costCache[key] = results[u]
		for _, i := range uniq[key].idxs {
			cands[i].Cost, cands[i].Total = results[u][0], results[u][1]
		}
	}
}

// hasConstrainedBelow reports whether any constrained node is in n's
// input subtree.
func hasConstrainedBelow(n *plan.Node, index map[*plan.Node]int) bool {
	for _, in := range n.Inputs {
		if _, ok := index[in]; ok {
			return true
		}
		if hasConstrainedBelow(in, index) {
			return true
		}
	}
	return false
}

// Summary renders the result for tooling output.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "centralized cost: %.0f B/s\n", r.CentralCost)
	if r.Best.IsEmpty() {
		b.WriteString("recommended: none (no partitioning beats centralized)\n")
	} else {
		fmt.Fprintf(&b, "recommended: %s  cost %.0f B/s  (%.1fx better than centralized)\n",
			r.Best, r.BestCost, r.CentralCost/maxf(r.BestCost, 1e-9))
	}
	names := make([]string, 0, len(r.PerNode))
	for name := range r.PerNode { //qap:allow maprange -- names collected then sorted below
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		req := r.PerNode[name]
		switch {
		case req.Universal:
			fmt.Fprintf(&b, "  %-24s compatible with any partitioning\n", name)
		case req.Set.IsEmpty():
			fmt.Fprintf(&b, "  %-24s no compatible partitioning\n", name)
		default:
			fmt.Fprintf(&b, "  %-24s requires %s\n", name, req.Set)
		}
	}
	shown := len(r.Candidates)
	if shown > 8 {
		shown = 8
	}
	for i := 0; i < shown; i++ {
		c := r.Candidates[i]
		fmt.Fprintf(&b, "  candidate %-28s cost %.0f  satisfies {%s}\n", c.Set, c.Cost, strings.Join(c.Queries, ", "))
	}
	return b.String()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
