// Package optimizer is the partition-aware distributed query optimizer
// (paper Section 5). Starting from the partition-agnostic plan — every
// partition merged on the aggregator host, every query node running
// there — it applies bottom-up transformation rules that push
// compatible operators below the merges:
//
//   - selection/projection always runs per partition (Section 5.4);
//   - a compatible aggregation runs one copy per partition, the
//     aggregator only unions finished groups (Section 5.2.1, Figure 4);
//   - an incompatible aggregation splits into sub-aggregates (per
//     partition, or per host in the "optimized" configuration) and a
//     central super-aggregate — WHERE pushes into the sub-aggregate,
//     HAVING stays central (Section 5.2.2, Figure 5);
//   - a compatible join becomes pair-wise per-partition joins
//     (Section 5.3, Figure 7).
//
// The result is a physical plan the cluster simulator instantiates.
package optimizer

import (
	"fmt"
	"strings"

	"qap/internal/core"
	"qap/internal/plan"
)

// OpKind classifies physical operators.
type OpKind uint8

// Physical operator kinds.
const (
	OpScan OpKind = iota
	OpUnion
	OpSelProj
	OpAggregate // full aggregation (compatible or centralized)
	OpAggSub    // partial pre-aggregation
	OpAggSuper  // central merging aggregation
	OpJoin
	OpOutput
	// OpWindow merges per-pane partial aggregates into sliding-window
	// results (downstream of OpAggSub instances).
	OpWindow
)

// String names the kind.
func (k OpKind) String() string {
	switch k {
	case OpScan:
		return "scan"
	case OpUnion:
		return "union"
	case OpSelProj:
		return "select/project"
	case OpAggregate:
		return "aggregate"
	case OpAggSub:
		return "sub-aggregate"
	case OpAggSuper:
		return "super-aggregate"
	case OpJoin:
		return "join"
	case OpOutput:
		return "output"
	case OpWindow:
		return "sliding-window"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one physical operator instance.
type Op struct {
	ID   int
	Kind OpKind
	// Host placing the instance; the aggregator host runs all central
	// operators.
	Host int
	// Partition is the stream partition the instance serves, or -1
	// for host-level and central operators.
	Partition int
	// Proc identifies the simulated process the operator runs in:
	// per-partition operators share their partition's capture process,
	// host-level pre-aggregation runs in the process of the host's
	// first partition (it reads the sibling ring buffer directly), and
	// -1 is the central root process on the aggregator host.
	Proc int
	// Logical is the query-DAG node this operator implements; nil for
	// scans, unions, and outputs.
	Logical *plan.Node
	// Stream names the scanned stream for OpScan.
	Stream string
	// Inputs in port order (joins: left, right).
	Inputs []*Op
}

// Label renders a short description for plan printing.
func (o *Op) Label() string {
	var b strings.Builder
	b.WriteString(o.Kind.String())
	switch {
	case o.Kind == OpScan:
		fmt.Fprintf(&b, " %s[p%d]", o.Stream, o.Partition)
	case o.Logical != nil:
		fmt.Fprintf(&b, " %s", o.Logical.QueryName)
		if o.Partition >= 0 {
			fmt.Fprintf(&b, "[p%d]", o.Partition)
		}
	}
	fmt.Fprintf(&b, " @host%d", o.Host)
	return b.String()
}

// Plan is a distributed physical plan.
type Plan struct {
	// Ops in topological order (inputs precede consumers).
	Ops []*Op
	// Outputs maps each root query name to its output operator.
	Outputs map[string]*Op
	// Hosts, Partitions, and PartitionsPerHost record the cluster
	// shape the plan was built for.
	Hosts, Partitions, PartitionsPerHost int
	// AggregatorHost runs the central operators (and the final
	// outputs); it is also a leaf host holding partitions.
	AggregatorHost int
	// Set is the partitioning the splitter applies; empty means
	// query-agnostic (round-robin) splitting.
	Set core.Set
	// StreamSets, when non-nil, assigns a distinct partitioning per
	// source stream (the paper's future-work extension) and takes
	// precedence over Set.
	StreamSets core.StreamSets
	// Graph is the logical plan this physical plan implements.
	Graph *plan.Graph
}

// SplitterSet returns the partitioning the splitter applies to the
// named stream.
func (p *Plan) SplitterSet(stream string) core.Set {
	if p.StreamSets != nil {
		return p.StreamSets.Get(stream)
	}
	return p.Set
}

// HostOfPartition places partitions on hosts in contiguous blocks
// (the paper assigns two partitions to each host).
func (p *Plan) HostOfPartition(part int) int {
	if p.PartitionsPerHost <= 0 {
		return 0
	}
	h := part / p.PartitionsPerHost
	if h >= p.Hosts {
		h = p.Hosts - 1
	}
	return h
}

// String renders the plan grouped by host, for golden tests matching
// the paper's plan figures.
func (p *Plan) String() string {
	var b strings.Builder
	for _, op := range p.Ops {
		ins := make([]string, len(op.Inputs))
		for i, in := range op.Inputs {
			ins[i] = fmt.Sprintf("%d", in.ID)
		}
		fmt.Fprintf(&b, "%3d: %-40s <- [%s]\n", op.ID, op.Label(), strings.Join(ins, ", "))
	}
	return b.String()
}

// CountKind reports how many operators of a kind the plan contains,
// a convenience for plan-shape tests.
func (p *Plan) CountKind(k OpKind) int {
	n := 0
	for _, op := range p.Ops {
		if op.Kind == k {
			n++
		}
	}
	return n
}

// Scope selects the granularity of partial pre-aggregation for
// incompatible aggregations.
type Scope uint8

// Partial-aggregation scopes. ScopePartition pre-aggregates each
// partition separately (the paper's Naive configuration); ScopeHost
// first unions the host's partitions and pre-aggregates once per host
// (the Optimized configuration, deduplicating groups across the
// host's partitions).
const (
	ScopePartition Scope = iota
	ScopeHost
)

// Options configures physical plan construction.
type Options struct {
	// Hosts is the cluster size (the paper varies 1-4).
	Hosts int
	// PartitionsPerHost is the splitter fan-out per host (2 in the
	// paper, matching dual-core machines).
	PartitionsPerHost int
	// AggregatorHost runs central operators; it is host 0 by default.
	AggregatorHost int
	// PartialAgg enables the sub/super-aggregate split for
	// incompatible aggregations.
	PartialAgg bool
	// PartialScope selects per-partition or per-host pre-aggregation.
	PartialScope Scope
	// StreamSets, when non-nil, partitions each source stream by its
	// own set; compatibility then uses the per-stream semantics.
	StreamSets core.StreamSets
}

// DefaultOptions mirrors the paper's cluster: 4 hosts, 2 partitions
// each, partial aggregation per host.
func DefaultOptions() Options {
	return Options{Hosts: 4, PartitionsPerHost: 2, PartialAgg: true, PartialScope: ScopeHost}
}
