package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSchemaVersionRoundTrip: every committed report artifact encodes
// the package-wide SchemaVersion, decodes back through DecodeStrict,
// and fails fast when the version is stale. One table covers all four
// Versioned implementations so adding a fifth without wiring it here
// is a conscious choice, not an accident.
func TestSchemaVersionRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		current Versioned
		stale   Versioned
		fresh   func() Versioned
	}{
		{"RunReport",
			&RunReport{SchemaVersion: SchemaVersion, DurationSec: 9},
			&RunReport{SchemaVersion: SchemaVersion + 1},
			func() Versioned { return &RunReport{} }},
		{"BenchReport",
			&BenchReport{SchemaVersion: SchemaVersion},
			&BenchReport{SchemaVersion: SchemaVersion - 1},
			func() Versioned { return &BenchReport{} }},
		{"ExecBenchReport",
			&ExecBenchReport{SchemaVersion: SchemaVersion},
			&ExecBenchReport{SchemaVersion: SchemaVersion + 7},
			func() Versioned { return &ExecBenchReport{} }},
		{"DriftBenchReport",
			&DriftBenchReport{SchemaVersion: SchemaVersion},
			&DriftBenchReport{SchemaVersion: 0},
			func() Versioned { return &DriftBenchReport{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.current.Version(); got != SchemaVersion {
				t.Fatalf("Version() = %d, want %d", got, SchemaVersion)
			}
			b, err := json.Marshal(tc.current)
			if err != nil {
				t.Fatal(err)
			}
			dst := tc.fresh()
			if err := DecodeStrict(b, dst); err != nil {
				t.Fatalf("DecodeStrict on a current artifact: %v", err)
			}
			if dst.Version() != SchemaVersion {
				t.Fatalf("round-tripped version = %d, want %d", dst.Version(), SchemaVersion)
			}

			sb, err := json.Marshal(tc.stale)
			if err != nil {
				t.Fatal(err)
			}
			err = DecodeStrict(sb, tc.fresh())
			if err == nil {
				t.Fatal("DecodeStrict accepted a stale schema_version")
			}
			if !strings.Contains(err.Error(), "schema_version") {
				t.Fatalf("stale-version error does not name the field: %v", err)
			}
		})
	}
}

// TestCheckSchemaVersion covers the bare assertion helper.
func TestCheckSchemaVersion(t *testing.T) {
	if err := CheckSchemaVersion("x", SchemaVersion); err != nil {
		t.Fatalf("matching version rejected: %v", err)
	}
	err := CheckSchemaVersion("BENCH_exec.json", SchemaVersion+1)
	if err == nil {
		t.Fatal("mismatched version accepted")
	}
	if !strings.Contains(err.Error(), "BENCH_exec.json") {
		t.Fatalf("error does not name the artifact: %v", err)
	}
}
