package live

import (
	"strings"
	"testing"
	"time"
)

// echoExec is a deterministic executor: each feed yields one link with
// one advance item per round, and a fixed result payload.
type echoExec struct{ res []byte }

func (e *echoExec) Execute(m *FeedMsg) (*LinkMsg, error) {
	link := &LinkMsg{Through: -1, Done: m.Last}
	for _, r := range m.Rounds {
		link.Items = append(link.Items, Item{
			Round: r.Round, Kind: ItemAdvance, WM: r.WM, MWM: r.WM,
		})
		link.Through = r.Round
	}
	return link, nil
}

func (e *echoExec) Result() ([]byte, error) { return e.res, nil }

// TestNodeSplitterEndToEnd runs the full protocol over a real socket:
// handshake, three feeds, per-feed links, the final result frame, and
// a clean finish on both sides once everything is acknowledged.
func TestNodeSplitterEndToEnd(t *testing.T) {
	cfg := Config{Timeout: 5 * time.Second}
	node, err := NewNode(cfg, NodeOptions{
		Host:        0,
		Fingerprint: "fp",
		BatchSize:   8,
		SendResult:  true,
		NewExecutor: func(h *Hello) (Executor, error) {
			if h.Fingerprint != "fp" || h.BatchSize != 8 {
				t.Errorf("executor built from hello %+v", h)
			}
			return &echoExec{res: []byte("final shards")}, nil
		},
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- node.Serve() }()
	defer node.Close()

	sp := NewSplitter(cfg, Hello{
		BatchSize:   8,
		Streams:     []string{"tcp"},
		Fingerprint: "fp",
	}, []string{node.Addr()})
	sp.Start()
	defer sp.Close()

	for i := 0; i < 3; i++ {
		m := &FeedMsg{Last: i == 2, Rounds: []Round{{
			Round: i, WM: uint64(16 * (i + 1)), Adv: true,
			Groups: []Group{{Tag: uint64(i), Tuples: protoBatch()}},
		}}}
		if err := sp.SendFeed(0, m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case link := <-sp.Links():
			if link.Host != 0 || link.Through != i {
				t.Fatalf("link %d: host=%d through=%d", i, link.Host, link.Through)
			}
			if want := i == 2; link.Done != want {
				t.Fatalf("link %d: done=%v, want %v", i, link.Done, want)
			}
			if len(link.Items) != 1 || link.Items[0].Kind != ItemAdvance {
				t.Fatalf("link %d items: %+v", i, link.Items)
			}
		case err := <-sp.Errs():
			t.Fatal(err)
		case <-time.After(5 * time.Second):
			t.Fatalf("link %d never arrived", i)
		}
	}
	if err := sp.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := string(sp.Result(0)); got != "final shards" {
		t.Fatalf("result = %q", got)
	}
	select {
	case err := <-sp.Errs():
		t.Fatalf("unexpected splitter error: %v", err)
	default:
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("node.Serve: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("node.Serve did not return after full acknowledgement")
	}
}

// TestNodeFingerprintMismatchIsFatal: a splitter announcing a different
// deployment must be refused permanently — the node fails its Serve
// with the fingerprint error instead of rejecting the same peer
// forever, and the splitter exhausts its attempts.
func TestNodeFingerprintMismatchIsFatal(t *testing.T) {
	cfg := Config{Timeout: time.Second, MaxAttempts: 2, LinkWindow: 4}
	node, err := NewNode(cfg, NodeOptions{
		Host:        0,
		Fingerprint: "deployment-a",
		NewExecutor: func(h *Hello) (Executor, error) { return &echoExec{}, nil },
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- node.Serve() }()
	defer node.Close()

	sp := NewSplitter(cfg, Hello{Fingerprint: "deployment-b"}, []string{node.Addr()})
	sp.Start()
	defer sp.Close()

	select {
	case err := <-serveErr:
		if err == nil || !strings.Contains(err.Error(), "deployment fingerprint") {
			t.Fatalf("node.Serve = %v, want fingerprint error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("node.Serve did not fail on the fingerprint mismatch")
	}
	select {
	case err := <-sp.Errs():
		if !strings.Contains(err.Error(), "giving up after") {
			t.Fatalf("splitter error = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("splitter never gave up on the refused deployment")
	}
}

// TestFeedRetransmitReAcked: a duplicated feed frame (the FaultDup
// script on the splitter's first post-handshake write) must be
// executed once and re-acked, not treated as a gap — the dedup half of
// exactly-once delivery.
func TestFeedRetransmitReAcked(t *testing.T) {
	cfg := Config{Timeout: 5 * time.Second}
	node, err := NewNode(cfg, NodeOptions{
		Host:        0,
		NewExecutor: func(h *Hello) (Executor, error) { return &echoExec{}, nil },
	}, "")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- node.Serve() }()
	defer node.Close()

	plan := &FaultPlan{Faults: []Fault{{Host: -1, Session: -1, Write: 1, Action: FaultDup}}}
	spCfg := cfg
	spCfg.Dial = plan.Dial(DefaultDial(cfg.timeout()))
	sp := NewSplitter(spCfg, Hello{}, []string{node.Addr()})
	sp.Start()
	defer sp.Close()

	if err := sp.SendFeed(0, &FeedMsg{Last: true, Rounds: []Round{{Round: 0, WM: 16}}}); err != nil {
		t.Fatal(err)
	}
	select {
	case link := <-sp.Links():
		if !link.Done {
			t.Fatalf("link not done: %+v", link)
		}
	case err := <-sp.Errs():
		t.Fatal(err)
	case <-time.After(5 * time.Second):
		t.Fatal("link never arrived")
	}
	if err := sp.Wait(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if plan.Hits() != 1 {
		t.Fatalf("fault plan hits = %d, want 1", plan.Hits())
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("node.Serve: %v", err)
	}
}
