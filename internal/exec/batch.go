package exec

import "sync"

// Batch-at-a-time execution (the vectorized hot path).
//
// A Batch is a run of tuples delivered to one consumer in one call.
// Batching does not change operator semantics: PushBatch(b) must be
// observationally equivalent to pushing b's tuples one at a time, in
// order. What it changes is the constant factor — operators that
// implement BatchConsumer amortize per-tuple costs (group-key
// encoding buffers, map probes, output allocations) across the batch.
//
// The batch CONTAINER (the []Tuple slice) is owned by the producer and
// is invalid after PushBatch returns: consumers must not retain or
// mutate the slice itself. The tuples INSIDE the batch follow the
// normal Tuple contract — immutable once pushed, retainable forever —
// so stateful operators (joins, windows, collectors) may keep
// references to them. This split is what lets producers recycle
// containers through a pool while tuple backing memory stays safely
// garbage-collected.

// Batch is a run of tuples bound for one consumer.
type Batch []Tuple

// BatchConsumer is implemented by consumers with a vectorized fast
// path. PushBatch(b) must behave exactly like Push(b[0]) ... Push(b[n-1]);
// the consumer must not retain or mutate the slice b itself (the
// tuples inside it are retainable as usual).
type BatchConsumer interface {
	Consumer
	PushBatch(b Batch)
}

// PushAll delivers a batch through the consumer's fast path when it
// has one, and tuple-at-a-time otherwise. Either way the consumer
// observes the tuples in batch order.
func PushAll(c Consumer, b Batch) {
	if len(b) == 0 {
		return
	}
	if bc, ok := c.(BatchConsumer); ok {
		bc.PushBatch(b)
		return
	}
	for _, t := range b {
		c.Push(t)
	}
}

// batchPool recycles batch containers across rounds; entries are
// *Batch so Put does not box a fresh interface per call.
var batchPool sync.Pool

// GetBatch returns an empty batch container, reusing a pooled one's
// capacity when available.
func GetBatch() Batch {
	if v := batchPool.Get(); v != nil {
		return (*v.(*Batch))[:0]
	}
	return make(Batch, 0, 256)
}

// PutBatch returns a container to the pool. The caller must not use b
// afterwards; tuples referenced by b are unaffected (the pool recycles
// only the container).
func PutBatch(b Batch) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	batchPool.Put(&b)
}

// PushBatch implements BatchConsumer.
func (Discard) PushBatch(Batch) {}

// PushBatch implements BatchConsumer.
func (c *Collector) PushBatch(b Batch) { c.Rows = append(c.Rows, b...) }

// PushBatch implements BatchConsumer: every output observes the whole
// batch, in Outs order, matching the scalar Tee's per-tuple fanout
// order per consumer.
func (t *Tee) PushBatch(b Batch) {
	for _, o := range t.Outs {
		PushAll(o, b)
	}
}
