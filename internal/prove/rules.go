package prove

import (
	"fmt"
	"strings"

	"qap/internal/core"
	"qap/internal/gsql"
	"qap/internal/lint"
)

// Rule names. A certificate step cites exactly one rule; the verifier
// checks the step's side condition under that rule against the plan.
// Names are part of the certificate format and are append-only.
const (
	// RuleUniversal: the node is a per-tuple operator
	// (selection/projection), compatible with any routing of its input
	// — including the query-agnostic round-robin of the empty set
	// (paper Section 3.4).
	RuleUniversal = "universal"
	// RuleGroupRequires: a GROUP BY term traces to a scalar expression
	// over one base attribute; that expression joins the node's scope
	// set (Section 3.5.2).
	RuleGroupRequires = "group-requires"
	// RuleGroupOpaque: a GROUP BY term has no single-attribute base
	// lineage (aggregate result, multi-attribute expression) and
	// contributes no scope element (Section 3.5.2).
	RuleGroupOpaque = "group-opaque"
	// RuleGroupTemporal: a tumbling window's temporal GROUP BY term is
	// admitted to the scope set for the compatibility test only — a
	// coarsening of the window expression still routes whole groups
	// together (Section 3.5.1).
	RuleGroupTemporal = "group-temporal"
	// RuleGroupTemporalSliding: a sliding window's temporal term is
	// excluded outright — group allocation must not change mid-window
	// (Section 3.5.1).
	RuleGroupTemporalSliding = "group-temporal-sliding"
	// RuleJoinRequires: an equi-join key pair whose two sides trace to
	// the same base expression; that expression joins the scope set
	// (Section 3.5.3).
	RuleJoinRequires = "join-requires"
	// RuleJoinOpaque: a key side has no single-attribute base lineage;
	// the pair contributes no scope element (Section 3.5.3).
	RuleJoinOpaque = "join-opaque"
	// RuleJoinDivergent: the two key sides trace to different base
	// expressions, so no shared partitioning expression can co-locate
	// matching tuples (Section 3.5.3).
	RuleJoinDivergent = "join-divergent"
	// RuleScope: assembles the node's scope (requirement) set as the
	// normalized union of the elements contributed by the lineage
	// steps (Section 3.5).
	RuleScope = "scope"
	// RuleUnpartitionable: the scope set is empty — no stream
	// partitioning lets the node run partitioned (QAP002).
	RuleUnpartitionable = "unpartitionable"
	// RuleSetEmpty: the candidate set is empty, so routing is
	// query-agnostic and satisfies no grouping constraint
	// (Section 3.4).
	RuleSetEmpty = "set-empty"
	// RuleCovers: one candidate element is a function of a scope
	// element, so partitioning by it never separates tuples the scope
	// element groups together (Section 3.4).
	RuleCovers = "covers"
	// RuleUncovered: a candidate element is a function of no scope
	// element (QAP004).
	RuleUncovered = "uncovered"
	// RuleCompatible: every candidate element is covered; the set is
	// compatible with the node (QAP003).
	RuleCompatible = "compatible"
	// RuleIncompatible: some candidate element is uncovered; the set
	// is excluded (QAP004).
	RuleIncompatible = "incompatible"
	// RuleDistributable: the node is compatible and every input is
	// itself distributable (sources are partitioned by the splitter
	// axiomatically), so one copy per partition computes the same
	// answer as central execution (Section 5.2, Opt_Eligible).
	RuleDistributable = "distributable"
	// RuleCentralize: the node is incompatible, or some input must
	// centralize, so the node runs centrally (Section 5.2).
	RuleCentralize = "centralize"
)

// ruleInfo fixes each rule's QAP code (when the rule surfaces as a
// lint diagnostic) and paper-section citation.
type ruleInfo struct {
	Code    string // "" when the rule has no lint surface
	Section string
}

// rules is the rule registry. Sections for code-bearing rules are
// taken from the lint code registry (internal/lint/codes.go) so the
// two stay consistent; TestRuleRegistry enforces the tie.
var rules = map[string]ruleInfo{
	RuleUniversal:            {Code: lint.CodeUniversal, Section: lintSection(lint.CodeUniversal)},
	RuleGroupRequires:        {Section: "3.5.2"},
	RuleGroupOpaque:          {Section: "3.5.2"},
	RuleGroupTemporal:        {Section: "3.5.1"},
	RuleGroupTemporalSliding: {Section: "3.5.1"},
	RuleJoinRequires:         {Section: "3.5.3"},
	RuleJoinOpaque:           {Section: "3.5.3"},
	RuleJoinDivergent:        {Section: "3.5.3"},
	RuleScope:                {Section: "3.5"},
	RuleUnpartitionable:      {Code: lint.CodeUnpartitionable, Section: lintSection(lint.CodeUnpartitionable)},
	RuleSetEmpty:             {Section: "3.4"},
	RuleCovers:               {Section: "3.4"},
	RuleUncovered:            {Code: lint.CodeSetExcluded, Section: lintSection(lint.CodeSetExcluded)},
	RuleCompatible:           {Code: lint.CodeSetCompatible, Section: lintSection(lint.CodeSetCompatible)},
	RuleIncompatible:         {Code: lint.CodeSetExcluded, Section: lintSection(lint.CodeSetExcluded)},
	RuleDistributable:        {Section: "5.2"},
	RuleCentralize:           {Section: "5.2"},
}

// lintSection looks a code's paper section up in the lint registry.
func lintSection(code string) string {
	for _, c := range lint.Codes {
		if c.Code == code {
			return c.Section
		}
	}
	return ""
}

// ---- conclusion formatting ----
//
// Conclusions are canonical strings: the prover emits them and the
// verifier recomputes them from the (independently checked) step
// subjects, so any edit to a conclusion is detected.

func conclUniversal() string { return "compatible with any routing" }

func conclRequires(elem string) string { return "requires " + elem }

func conclTemporal(elem string) string {
	return "requires " + elem + " (temporal: compatibility only)"
}

func conclTemporalSliding() string {
	return "temporal term excluded: sliding-window group allocation must not change mid-window"
}

func conclGroupOpaque() string { return "no single-attribute base lineage; contributes no element" }

func conclJoinOpaque() string { return "key side has no base lineage; contributes no element" }

func conclJoinDivergent(l, r string) string {
	return fmt.Sprintf("sides trace to %s vs %s; contributes no element", l, r)
}

func conclScope(s core.Set) string { return "scope " + s.String() }

func conclUnpartitionable() string { return "no compatible partitioning exists; node runs centrally" }

func conclSetEmpty() string { return "candidate set is empty: routing is query-agnostic" }

func conclCovers(elem, of string) string {
	return "covered: " + elem + " is a function of " + of
}

func conclUncovered(elem string) string {
	return "no scope element has " + elem + " as a function"
}

func conclCompatible() string { return "compatible" }

func conclIncompatible() string { return "incompatible" }

// ---- shared expression helpers ----

// stripQual rewrites an expression with every column reference
// unqualified and lower-cased, the normal form under which element
// expressions compare (TCP.SrcIP == srcip).
func stripQual(e gsql.Expr) gsql.Expr {
	switch t := e.(type) {
	case *gsql.ColumnRef:
		return &gsql.ColumnRef{Name: strings.ToLower(t.Name)}
	case *gsql.Unary:
		return &gsql.Unary{Op: t.Op, X: stripQual(t.X)}
	case *gsql.Binary:
		return &gsql.Binary{Op: t.Op, L: stripQual(t.L), R: stripQual(t.R)}
	case *gsql.FuncCall:
		args := make([]gsql.Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = stripQual(a)
		}
		return &gsql.FuncCall{Name: t.Name, Star: t.Star, Args: args}
	default:
		return gsql.CloneExpr(e)
	}
}

// equalNoQual compares two expressions modulo reference qualifiers
// and identifier case.
func equalNoQual(a, b gsql.Expr) bool {
	return gsql.EqualExpr(stripQual(a), stripQual(b))
}
