package trace

import (
	"encoding/json"
	"strconv"
)

// chromeEvent is one Chrome trace_event record (the about:tracing /
// Perfetto JSON format). Timestamps are microseconds of *trace time*
// (watermark seconds scaled by 1e6), never wall clock, so the export
// is as deterministic as the canonical JSONL.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// eventArgs flattens a record into trace_event args. encoding/json
// sorts map keys, so the output stays deterministic.
func eventArgs(e *Event) map[string]any {
	b, err := json.Marshal(e)
	if err != nil {
		return nil
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return nil
	}
	delete(m, "kind")
	return m
}

// ChromeJSON converts the trace to Chrome trace_event JSON. Process
// ids map to hosts (pid h = leaf host h); the central island, the
// splitter/driver, and the adaptive controller get the three pids
// after the leaf hosts. Thread ids within a host are operator ids.
func (t *Trace) ChromeJSON() ([]byte, error) {
	hosts, winSec := 0, 0
	var durSec float64
	// pid lanes, refreshed at each header so composed traces keep a
	// consistent mapping (phases share the cluster shape).
	pidOf := func(e *Event) int {
		if e.Central {
			return hosts
		}
		return e.Host
	}
	f := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	meta := func(pid int, name string) {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": name},
		})
	}
	sec := func(s uint64) float64 { return float64(s) * 1e6 }
	for i := range t.Records {
		e := &t.Records[i]
		switch e.Kind {
		case KindHeader:
			hosts, winSec, durSec = e.Hosts, e.WindowSec, e.DurationSec
			for h := 0; h < hosts; h++ {
				meta(h, nameWithPhase("host", e.Phase, h))
			}
			meta(hosts, nameWithPhase("central", e.Phase, -1))
			meta(hosts+1, nameWithPhase("driver", e.Phase, -1))
			meta(hosts+2, nameWithPhase("controller", e.Phase, -1))
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: KindHeader, Ph: "i", Ts: 0, Pid: hosts + 1, S: "g",
				Args: eventArgs(e),
			})
		case KindRound:
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: KindRound, Ph: "X", Ts: sec(e.WM), Dur: 1e6,
				Pid: hosts + 1, Args: eventArgs(e),
			})
		case KindFlush:
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: KindFlush, Ph: "i", Ts: durSec * 1e6, Pid: hosts + 1,
				S: "g", Args: eventArgs(e),
			})
		case KindHostWindow:
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: "window", Ph: "X",
				Ts:  sec(uint64(e.Window) * uint64(winSec)),
				Dur: float64(winSec) * 1e6,
				Pid: pidOf(e), Args: eventArgs(e),
			})
		case KindOpWindow:
			name := e.OpKind
			if e.Query != "" {
				name += " " + e.Query
			}
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: name, Ph: "X",
				Ts:  sec(uint64(e.Window) * uint64(winSec)),
				Dur: float64(winSec) * 1e6,
				Pid: pidOf(e), Tid: e.Op, Args: eventArgs(e),
			})
		case KindEpochFlush, KindPaneFlush:
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: e.Kind, Ph: "i", Ts: sec(e.WM),
				Pid: pidOf(e), Tid: e.Op, S: "t", Args: eventArgs(e),
			})
		case KindTriggerEval, KindTrigger, KindStatsRefresh,
			KindReanalyze, KindSwitch, KindConfirm, KindReplay:
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: e.Kind, Ph: "i", Ts: sec(e.WM), Pid: hosts + 2,
				S: "g", Args: eventArgs(e),
			})
		case KindTiming:
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: KindTiming, Ph: "i", Ts: 0, Pid: hosts + 1, S: "g",
				Args: eventArgs(e),
			})
		}
	}
	return json.MarshalIndent(&f, "", " ")
}

func nameWithPhase(base, phase string, idx int) string {
	name := base
	if idx >= 0 {
		name = base + " " + strconv.Itoa(idx)
	}
	if phase != "" {
		name += " (" + phase + ")"
	}
	return name
}
