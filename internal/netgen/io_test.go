package netgen

import (
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DurationSec, cfg.PacketsPerSec = 5, 200
	tr := Generate(cfg)
	var b strings.Builder
	if err := WriteCSV(&b, tr.Packets); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr.Packets) {
		t.Fatalf("round trip lost packets: %d vs %d", len(got), len(tr.Packets))
	}
	for i := range got {
		if got[i] != tr.Packets[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, got[i], tr.Packets[i])
		}
	}
}

func TestReadCSVFlexibleInput(t *testing.T) {
	// Reordered header, integer IPs, whitespace.
	src := `srcIP,time,destIP,srcPort,destPort,len,flags,seq
10.0.0.1, 3 ,192.168.0.1,1024,80,100,2,0
167772162,4,3232235522,1025,443,200,16,1`
	got, err := ReadCSV(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d packets", len(got))
	}
	if got[0].SrcIP != 0x0A000001 || got[0].Time != 3 {
		t.Errorf("packet 0 = %+v", got[0])
	}
	if got[1].SrcIP != 167772162 || got[1].DestIP != 3232235522 {
		t.Errorf("packet 1 = %+v", got[1])
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"missing column", "time,srcIP\n1,2"},
		{"bad ip", "time,srcIP,destIP,srcPort,destPort,len,flags,seq\n1,10.0.0,1,1,1,1,1,1"},
		{"bad number", "time,srcIP,destIP,srcPort,destPort,len,flags,seq\n1,1,1,x,1,1,1,1"},
		{"unordered", "time,srcIP,destIP,srcPort,destPort,len,flags,seq\n5,1,1,1,1,1,1,1\n3,1,1,1,1,1,1,1"},
		{"empty", ""},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: should fail", c.name)
		}
	}
}
