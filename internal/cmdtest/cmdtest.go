// Package cmdtest holds the shared harness for the per-command usage
// golden tests: every cmd defines its flags in a defineFlags(fs)
// function, and its test renders that FlagSet's defaults against a
// committed testdata/usage.golden. The goldens pin the help surface —
// flag names, help strings, defaults — so help-text drift between
// commands (the -workers/-batch/-metrics-out families are shared
// vocabulary) shows up as a test diff instead of accumulating
// silently. cmd/qap-vet is the one flagless command: its usage surface
// is a positional directory only, so it carries no golden.
package cmdtest

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the usage golden files instead of comparing")

// workerDefault matches the trailing default clause on help lines whose
// default is runtime.GOMAXPROCS(0) — the only machine-dependent value
// in any command's usage.
var workerDefault = regexp.MustCompile(`\(default \d+\)$`)

// CheckUsage renders the command's flag defaults and compares them to
// testdata/usage.golden in the caller's package directory. Run the
// test with -update to (re)write the golden.
func CheckUsage(t *testing.T, name string, define func(fs *flag.FlagSet)) {
	t.Helper()
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	define(fs)
	var buf strings.Builder
	fs.SetOutput(&buf)
	fs.PrintDefaults()
	got := normalize(buf.String())

	golden := filepath.Join("testdata", "usage.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/... -update` to create the goldens)", err)
	}
	if got != string(want) {
		t.Errorf("%s usage drifted from the golden (re-run with -update if intended):\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// normalize rewrites the single machine-dependent default (worker
// goroutine counts default to GOMAXPROCS) to a stable token.
func normalize(s string) string {
	lines := strings.Split(s, "\n")
	for i, ln := range lines {
		if strings.Contains(ln, "worker goroutines") {
			lines[i] = workerDefault.ReplaceAllString(ln, "(default GOMAXPROCS)")
		}
	}
	return strings.Join(lines, "\n")
}
