//go:build race

package trace

// raceEnabled reports whether the race detector instruments this
// build; allocation-budget tests skip under it because instrumentation
// adds allocations the budgets do not account for.
const raceEnabled = true
