package gsql

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseQuerySet throws arbitrary bytes at the query-set parser.
// The properties under test:
//
//  1. the parser never panics — every malformed input (truncated
//     strings, stray bytes, deep nesting) comes back as a positioned
//     *gsql.Error;
//  2. accepted inputs round-trip: the String() rendering of a parsed
//     set must itself parse (the renderer and the grammar agree).
//
// The seed corpus is the checked-in example query files plus the
// malformed shapes fuzzing has found interesting before; additional
// regression entries live in testdata/fuzz/FuzzParseQuerySet.
func FuzzParseQuerySet(f *testing.F) {
	for _, name := range []string{"figure1.gsql", "section62.gsql"} {
		b, err := os.ReadFile(filepath.Join("..", "..", "examples", "queries", name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(b))
	}
	f.Add("query q:\nSELECT srcIP, COUNT(*) AS cnt FROM TCP GROUP BY time/60 AS tb, srcIP")
	f.Add("query j:\nSELECT S1.time FROM TCP S1, TCP S2 WHERE S1.time = S2.time AND S1.seq = S2.seq")
	f.Add("query o:\nSELECT S1.tb FROM a S1 LEFT OUTER JOIN b S2 ON S1.tb = S2.tb")
	f.Add("query w:\nSELECT tb, MAX(len) AS m FROM TCP GROUP BY time/60 AS tb WINDOW 4")
	f.Add("query p:\nSELECT srcIP FROM TCP WHERE flags = #PATTERN# -- comment")
	f.Add("query q:\nSELECT 'unterminated FROM TCP")
	f.Add("query q:\nSELECT ((((((srcIP)))))) FROM TCP")
	f.Add("query q:\nSELECT 0x FROM TCP")
	f.Add("query q:\nSELECT # FROM TCP")
	f.Add("query q:\nSELECT a FROM")

	f.Fuzz(func(t *testing.T, src string) {
		qs, err := ParseQuerySet(src)
		if err != nil {
			// Malformed input must be reported, not panicked on, and
			// the position must be in range for error rendering.
			if pos := ErrPos(err); pos.Line < 0 || pos.Col < 0 {
				t.Fatalf("negative error position %s for %q", pos, src)
			}
			return
		}
		rendered := qs.String()
		if _, err := ParseQuerySet(rendered); err != nil {
			t.Fatalf("accepted input renders unparseable text\ninput: %q\nrendered: %q\nerror: %v",
				src, rendered, err)
		}
	})
}
