package gsql

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genExpr builds a random expression of bounded depth over a small
// vocabulary of columns, constants, functions, and operators.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return &ColumnRef{Name: []string{"a", "b", "srcIP", "destPort"}[r.Intn(4)]}
		case 1:
			return &ColumnRef{Qualifier: "T", Name: "x"}
		case 2:
			return &NumberLit{U: uint64(r.Intn(1000))}
		default:
			return &StringLit{S: []string{"", "x", "a'b", `q\q`}[r.Intn(4)]}
		}
	}
	switch r.Intn(8) {
	case 0:
		return &Unary{Op: UnaryOp(r.Intn(3)), X: genExpr(r, depth-1)}
	case 1:
		return &FuncCall{Name: "ABS", Args: []Expr{genExpr(r, depth-1)}}
	default:
		ops := []BinOp{OpAdd, OpSub, OpMul, OpDiv, OpMod, OpBitAnd, OpBitOr,
			OpBitXor, OpShl, OpShr, OpEq, OpNeq, OpLt, OpLe, OpGt, OpGe, OpAnd, OpOr}
		return &Binary{
			Op: ops[r.Intn(len(ops))],
			L:  genExpr(r, depth-1),
			R:  genExpr(r, depth-1),
		}
	}
}

// TestExprPrintParseRoundTripProperty: every printable expression
// reparses to a structurally equal tree — the printer's minimal
// parenthesization agrees with the parser's precedence.
func TestExprPrintParseRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 4)
		text := e.String()
		back, err := ParseExpr(text)
		if err != nil {
			t.Logf("seed %d: %q failed to parse: %v", seed, text, err)
			return false
		}
		if !EqualExpr(e, back) {
			t.Logf("seed %d: %q reparsed as %q", seed, text, back.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
