// Quickstart: load a stream schema and a query, let the analyzer pick
// the optimal partitioning, deploy on a 4-host simulated cluster, and
// run a synthetic trace through it.
package main

import (
	"fmt"
	"log"

	"qap"
)

const queries = `
query flows:
SELECT tb, srcIP, destIP, COUNT(*) AS cnt, SUM(len) AS bytes
FROM TCP
GROUP BY time/60 AS tb, srcIP, destIP
`

func main() {
	// 1. Load the schema and query set into a logical query DAG.
	sys, err := qap.Load(qap.TCPSchemaDDL, queries)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Analyze: infer each query's compatible partitioning set and
	//    pick the cost-optimal one for the whole set.
	analysis, err := sys.Analyze(nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recommended partitioning: %s\n", analysis.Best)

	// 3. Deploy a distributed plan for 4 hosts using it. The capacity
	//    sets what "100% CPU" means for the simulated hosts.
	cfg := qap.DefaultTraceConfig()
	cfg.DurationSec = 120
	dep, err := sys.Deploy(qap.DeployConfig{
		Hosts:        4,
		Partitioning: analysis.Best,
		Costs:        qap.CostConfig{CapacityPerSec: float64(cfg.PacketsPerSec) * 3},
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run a two-minute synthetic trace.
	trace := qap.GenerateTrace(cfg)
	res, err := dep.Run("TCP", trace.Packets)
	if err != nil {
		log.Fatal(err)
	}

	rows := res.Outputs["flows"]
	fmt.Printf("flows: %d result rows; first three:\n", len(rows))
	for i := 0; i < 3 && i < len(rows); i++ {
		fmt.Printf("  %s\n", rows[i])
	}
	fmt.Println("\nper-host load:")
	fmt.Print(res.Metrics.String())
}
