package plan

import (
	"fmt"
	"strings"

	"qap/internal/gsql"
	"qap/internal/schema"
)

// Build analyzes a parsed query set against a catalog and produces the
// logical query DAG. Queries may reference base streams or earlier
// queries by name. Each query must be a basic streaming node —
// selection/projection, aggregation, or two-way equi-join — matching
// the paper's query-DAG model (Section 4.2); compound statements must
// be decomposed into multiple named queries.
func Build(cat *schema.Catalog, qs *gsql.QuerySet) (*Graph, error) {
	b := &builder{
		cat: cat,
		g:   &Graph{Catalog: cat, byName: make(map[string]*Node)},
	}
	for _, q := range qs.Queries {
		n, err := b.buildQuery(q)
		if err != nil {
			return nil, err
		}
		key := strings.ToLower(q.Name)
		if _, dup := b.g.byName[key]; dup {
			return nil, errf(q.Name, q.Pos, "name conflicts with an existing stream or query")
		}
		b.g.byName[key] = n
	}
	return b.g, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func MustBuild(cat *schema.Catalog, qs *gsql.QuerySet) *Graph {
	g, err := Build(cat, qs)
	if err != nil {
		panic(err)
	}
	return g
}

type builder struct {
	cat    *schema.Catalog
	g      *Graph
	nextID int
}

func (b *builder) newNode(kind Kind, name string) *Node {
	n := &Node{ID: b.nextID, Kind: kind, QueryName: name, TemporalKey: -1}
	b.nextID++
	b.g.Nodes = append(b.g.Nodes, n)
	return n
}

// input resolves a FROM reference to a node: an earlier query by name,
// or a base stream (creating/reusing its source node).
func (b *builder) input(queryName string, ref gsql.TableRef) (*Node, error) {
	if n, ok := b.g.byName[strings.ToLower(ref.Name)]; ok {
		return n, nil
	}
	s, ok := b.cat.Stream(ref.Name)
	if !ok {
		return nil, errf(queryName, ref.Pos, "FROM %s: no such stream or query", ref.Name)
	}
	// Reuse an existing source node for the stream.
	for _, n := range b.g.Nodes {
		if n.Kind == KindSource && n.Stream == s {
			return n, nil
		}
	}
	n := b.newNode(KindSource, s.Name)
	n.Stream = s
	n.OutCols = make([]ColDef, len(s.Attrs))
	for i, a := range s.Attrs {
		n.OutCols[i] = ColDef{
			Name: a.Name,
			Type: a.Type,
			Lineage: Lineage{
				Base: &BaseRef{
					Stream: s.Name,
					Attr:   a.Name,
					Expr:   &gsql.ColumnRef{Qualifier: s.Name, Name: a.Name},
				},
				Temporal: a.Temporal(),
			},
		}
	}
	b.g.byName[strings.ToLower(s.Name)] = n
	return n, nil
}

func (b *builder) buildQuery(q *gsql.Query) (*Node, error) {
	stmt := q.Stmt
	isJoin := stmt.From.Join != gsql.JoinNone
	isAgg := len(stmt.GroupBy) > 0
	if !isAgg {
		for _, it := range stmt.Items {
			if gsql.HasAggregate(it.Expr) {
				isAgg = true
				break
			}
		}
	}
	switch {
	case isJoin && isAgg:
		return nil, errf(q.Name, stmt.Pos, "a basic node cannot both join and aggregate; split it into two queries")
	case isJoin:
		return b.buildJoin(q)
	case isAgg:
		return b.buildAggregate(q)
	default:
		return b.buildSelectProject(q)
	}
}

// ---- column environments ----

type binding struct {
	name string
	cols []ColDef
}

type colEnv struct {
	queryName string
	pos       gsql.Pos // position errors are reported at (clause or query start)
	bindings  []binding
}

// at returns a copy of the environment reporting errors at pos.
func (e colEnv) at(pos gsql.Pos) colEnv {
	e.pos = pos
	return e
}

// resolve locates a column reference; it returns the binding index,
// column index and definition.
func (e colEnv) resolve(ref *gsql.ColumnRef) (int, int, ColDef, error) {
	if ref.Qualifier != "" {
		for bi, bd := range e.bindings {
			if strings.EqualFold(bd.name, ref.Qualifier) {
				for ci, c := range bd.cols {
					if strings.EqualFold(c.Name, ref.Name) {
						return bi, ci, c, nil
					}
				}
				return 0, 0, ColDef{}, errf(e.queryName, e.pos, "%s has no column %q", bd.name, ref.Name)
			}
		}
		return 0, 0, ColDef{}, errf(e.queryName, e.pos, "unknown input %q in reference %s", ref.Qualifier, ref)
	}
	foundBi, foundCi := -1, -1
	var found ColDef
	for bi, bd := range e.bindings {
		for ci, c := range bd.cols {
			if strings.EqualFold(c.Name, ref.Name) {
				if foundBi >= 0 {
					return 0, 0, ColDef{}, errf(e.queryName, e.pos, "column %q is ambiguous", ref.Name)
				}
				foundBi, foundCi, found = bi, ci, c
			}
		}
	}
	if foundBi < 0 {
		return 0, 0, ColDef{}, errf(e.queryName, e.pos, "unknown column %q", ref.Name)
	}
	return foundBi, foundCi, found, nil
}

// validate checks that every column reference in e resolves and that
// no aggregate call appears (aggregates are only legal where the
// caller extracts them first).
func (e colEnv) validate(expr gsql.Expr, clause string) error {
	var err error
	gsql.WalkExpr(expr, func(x gsql.Expr) bool {
		if err != nil {
			return false
		}
		switch t := x.(type) {
		case *gsql.ColumnRef:
			_, _, _, err = e.resolve(t)
		case *gsql.FuncCall:
			if gsql.IsAggregateName(t.Name) {
				err = errf(e.queryName, e.pos, "aggregate %s not allowed in %s", t.Name, clause)
				return false
			}
		}
		return true
	})
	return err
}

// sidesUsed reports which bindings an expression references.
func (e colEnv) sidesUsed(expr gsql.Expr) (map[int]bool, error) {
	used := make(map[int]bool)
	var err error
	gsql.WalkExpr(expr, func(x gsql.Expr) bool {
		if err != nil {
			return false
		}
		if ref, ok := x.(*gsql.ColumnRef); ok {
			bi, _, _, e2 := e.resolve(ref)
			if e2 != nil {
				err = e2
				return false
			}
			used[bi] = true
		}
		return true
	})
	return used, err
}

// lineageOf computes the lineage of an expression over this
// environment: the expression resolves to a base scalar expression
// when all referenced columns share lineage to one base attribute.
func (e colEnv) lineageOf(expr gsql.Expr) Lineage {
	temporal := false
	opaque := false
	type baseKey struct{ stream, attr string }
	seen := make(map[baseKey]bool)
	gsql.WalkExpr(expr, func(x gsql.Expr) bool {
		switch t := x.(type) {
		case *gsql.ColumnRef:
			_, _, c, err := e.resolve(t)
			if err != nil {
				opaque = true
				return false
			}
			if c.Lineage.Temporal {
				temporal = true
			}
			if c.Lineage.Base == nil {
				opaque = true
			} else {
				seen[baseKey{strings.ToLower(c.Lineage.Base.Stream), strings.ToLower(c.Lineage.Base.Attr)}] = true
			}
		case *gsql.FuncCall:
			if gsql.IsAggregateName(t.Name) {
				opaque = true
				return false
			}
		}
		return true
	})
	if opaque || len(seen) != 1 {
		return Lineage{Temporal: temporal}
	}
	base, ok := substituteCols(expr, func(ref *gsql.ColumnRef) (gsql.Expr, bool) {
		_, _, c, err := e.resolve(ref)
		if err != nil || c.Lineage.Base == nil {
			return nil, false
		}
		return gsql.CloneExpr(c.Lineage.Base.Expr), true
	})
	if !ok {
		return Lineage{Temporal: temporal}
	}
	var br BaseRef
	for k := range seen { //qap:allow maprange -- single-element map, guarded above
		br.Stream, br.Attr = k.stream, k.attr
	}
	br.Expr = base
	return Lineage{Base: &br, Temporal: temporal}
}

// typeOf infers a coarse output type for an expression.
func (e colEnv) typeOf(expr gsql.Expr) schema.Type {
	switch t := expr.(type) {
	case *gsql.ColumnRef:
		if _, _, c, err := e.resolve(t); err == nil {
			return c.Type
		}
		return schema.TUint
	case *gsql.NumberLit:
		if t.IsFloat {
			return schema.TFloat
		}
		return schema.TUint
	case *gsql.StringLit:
		return schema.TString
	case *gsql.ParamRef:
		return schema.TUint
	case *gsql.Unary:
		switch t.Op {
		case gsql.OpNot:
			return schema.TBool
		case gsql.OpNeg:
			if e.typeOf(t.X) == schema.TFloat {
				return schema.TFloat
			}
			return schema.TInt
		default:
			return e.typeOf(t.X)
		}
	case *gsql.Binary:
		switch t.Op {
		case gsql.OpOr, gsql.OpAnd, gsql.OpEq, gsql.OpNeq, gsql.OpLt, gsql.OpLe, gsql.OpGt, gsql.OpGe:
			return schema.TBool
		}
		lt, rt := e.typeOf(t.L), e.typeOf(t.R)
		switch {
		case lt == schema.TFloat || rt == schema.TFloat:
			return schema.TFloat
		case lt == schema.TInt || rt == schema.TInt:
			return schema.TInt
		default:
			return schema.TUint
		}
	case *gsql.FuncCall:
		if spec, ok := gsql.LookupAgg(t.Name); ok {
			switch spec.Name {
			case "COUNT", "COUNT_DISTINCT", "APPROX_COUNT_DISTINCT":
				return schema.TUint
			case "AVG", "VARIANCE", "STDDEV":
				return schema.TFloat
			default:
				if len(t.Args) == 1 {
					return e.typeOf(t.Args[0])
				}
				return schema.TUint
			}
		}
		if len(t.Args) == 1 {
			return e.typeOf(t.Args[0])
		}
		return schema.TUint
	default:
		return schema.TUint
	}
}

// substituteCols rewrites an expression replacing every ColumnRef via
// sub; it reports false if any substitution fails.
func substituteCols(expr gsql.Expr, sub func(*gsql.ColumnRef) (gsql.Expr, bool)) (gsql.Expr, bool) {
	switch t := expr.(type) {
	case *gsql.ColumnRef:
		return sub(t)
	case *gsql.NumberLit, *gsql.StringLit, *gsql.ParamRef:
		return gsql.CloneExpr(expr), true
	case *gsql.Unary:
		x, ok := substituteCols(t.X, sub)
		if !ok {
			return nil, false
		}
		return &gsql.Unary{Op: t.Op, X: x}, true
	case *gsql.Binary:
		l, ok := substituteCols(t.L, sub)
		if !ok {
			return nil, false
		}
		r, ok := substituteCols(t.R, sub)
		if !ok {
			return nil, false
		}
		return &gsql.Binary{Op: t.Op, L: l, R: r}, true
	case *gsql.FuncCall:
		args := make([]gsql.Expr, len(t.Args))
		for i, a := range t.Args {
			x, ok := substituteCols(a, sub)
			if !ok {
				return nil, false
			}
			args[i] = x
		}
		return &gsql.FuncCall{Name: t.Name, Star: t.Star, Args: args}, true
	default:
		return nil, false
	}
}

// defaultColName derives an output column name from an unaliased
// select expression.
func defaultColName(e gsql.Expr) string {
	if ref, ok := e.(*gsql.ColumnRef); ok {
		return ref.Name
	}
	return e.String()
}

// uniquifyNames makes output column names unique, qualifying
// duplicates; flow_pairs selects S1.max_cnt and S2.max_cnt, which
// become max_cnt and S2_max_cnt.
func uniquifyNames(items []gsql.SelectItem) []string {
	names := make([]string, len(items))
	seen := make(map[string]bool)
	for i, it := range items {
		name := it.Alias
		if name == "" {
			name = defaultColName(it.Expr)
		}
		if seen[strings.ToLower(name)] {
			if ref, ok := it.Expr.(*gsql.ColumnRef); ok && it.Alias == "" && ref.Qualifier != "" {
				name = ref.Qualifier + "_" + ref.Name
			}
			base := name
			for n := 2; seen[strings.ToLower(name)]; n++ {
				name = fmt.Sprintf("%s_%d", base, n)
			}
		}
		seen[strings.ToLower(name)] = true
		names[i] = name
	}
	return names
}

// connect registers the parent/child edge.
func connect(child, parent *Node) {
	parent.Inputs = append(parent.Inputs, child)
	child.Parents = append(child.Parents, parent)
}

// ---- selection/projection ----

func (b *builder) buildSelectProject(q *gsql.Query) (*Node, error) {
	stmt := q.Stmt
	in, err := b.input(q.Name, stmt.From.Left)
	if err != nil {
		return nil, err
	}
	env := colEnv{queryName: q.Name, pos: q.Pos, bindings: []binding{{stmt.From.Left.Binding(), in.OutCols}}}
	if stmt.Having != nil {
		return nil, errf(q.Name, stmt.HavingPos, "HAVING requires GROUP BY")
	}
	if stmt.Where != nil {
		if err := env.at(stmt.WherePos).validate(stmt.Where, "WHERE"); err != nil {
			return nil, err
		}
	}
	names := uniquifyNames(stmt.Items)
	n := b.newNode(KindSelectProject, q.Name)
	n.Pos = q.Pos
	n.InBind = stmt.From.Left.Binding()
	n.Filter = stmt.Where
	for i, it := range stmt.Items {
		if err := env.at(it.Pos).validate(it.Expr, "SELECT"); err != nil {
			return nil, err
		}
		n.Projs = append(n.Projs, NamedExpr{Name: names[i], Expr: it.Expr})
		n.OutCols = append(n.OutCols, ColDef{
			Name:    names[i],
			Type:    env.typeOf(it.Expr),
			Lineage: env.lineageOf(it.Expr),
		})
	}
	connect(in, n)
	return n, nil
}

// ---- aggregation ----

func (b *builder) buildAggregate(q *gsql.Query) (*Node, error) {
	stmt := q.Stmt
	in, err := b.input(q.Name, stmt.From.Left)
	if err != nil {
		return nil, err
	}
	env := colEnv{queryName: q.Name, pos: q.Pos, bindings: []binding{{stmt.From.Left.Binding(), in.OutCols}}}

	n := b.newNode(KindAggregate, q.Name)
	n.Pos = q.Pos
	n.InBind = stmt.From.Left.Binding()
	n.WindowPanes = stmt.WindowPanes
	if stmt.Where != nil {
		if err := env.at(stmt.WherePos).validate(stmt.Where, "WHERE"); err != nil {
			return nil, err
		}
		n.PreFilter = stmt.Where
	}

	// Group columns.
	for _, g := range stmt.GroupBy {
		if err := env.at(g.Pos).validate(g.Expr, "GROUP BY"); err != nil {
			return nil, err
		}
		name := g.Alias
		if name == "" {
			ref, ok := g.Expr.(*gsql.ColumnRef)
			if !ok {
				return nil, errf(q.Name, g.Pos, "GROUP BY expression %s must have an alias", g.Expr)
			}
			name = ref.Name
		}
		for _, existing := range n.GroupBy {
			if strings.EqualFold(existing.Name, name) {
				return nil, errf(q.Name, g.Pos, "duplicate GROUP BY name %q", name)
			}
		}
		lin := env.lineageOf(g.Expr)
		n.GroupBy = append(n.GroupBy, GroupCol{Name: name, Expr: g.Expr, Temporal: lin.Temporal})
	}

	// Rewrite select items and HAVING over group names + aggregates.
	rw := &aggRewriter{b: b, q: q, env: env, node: n, pos: q.Pos}
	names := uniquifyNames(stmt.Items)
	var posts []NamedExpr
	for i, it := range stmt.Items {
		rw.pos = it.Pos
		e, err := rw.rewrite(it.Expr, it.Alias)
		if err != nil {
			return nil, err
		}
		posts = append(posts, NamedExpr{Name: names[i], Expr: e})
	}
	if stmt.Having != nil {
		rw.pos = stmt.HavingPos
		h, err := rw.rewrite(stmt.Having, "")
		if err != nil {
			return nil, err
		}
		n.Having = h
	}
	n.Post = posts

	if n.WindowPanes > 1 {
		if n.EpochGroupCol() < 0 {
			return nil, errf(q.Name, stmt.WindowPos, "WINDOW requires a temporal GROUP BY term to define the pane")
		}
		for _, a := range n.Aggs {
			if !a.Spec.Splittable {
				return nil, errf(q.Name, stmt.WindowPos, "WINDOW cannot merge holistic aggregate %s across panes", a.Spec.Name)
			}
		}
	}

	// Output columns with lineage through the group columns.
	postEnv := n.aggPostEnv(q.Name, env)
	for _, p := range posts {
		n.OutCols = append(n.OutCols, ColDef{
			Name:    p.Name,
			Type:    postEnv.typeOf(p.Expr),
			Lineage: postEnv.lineageOf(p.Expr),
		})
	}
	connect(in, n)
	return n, nil
}

// aggPostEnv builds the environment that HAVING and post-projection
// expressions are evaluated in: group columns followed by aggregate
// outputs. Aggregate outputs are opaque for lineage purposes.
func (n *Node) aggPostEnv(queryName string, inputEnv colEnv) colEnv {
	cols := make([]ColDef, 0, len(n.GroupBy)+len(n.Aggs))
	for _, g := range n.GroupBy {
		cols = append(cols, ColDef{
			Name:    g.Name,
			Type:    inputEnv.typeOf(g.Expr),
			Lineage: inputEnv.lineageOf(g.Expr),
		})
	}
	for _, a := range n.Aggs {
		typ := schema.TUint
		switch a.Spec.Name {
		case "AVG", "VARIANCE", "STDDEV":
			typ = schema.TFloat
		case "COUNT", "COUNT_DISTINCT", "APPROX_COUNT_DISTINCT":
			typ = schema.TUint
		default:
			if a.Arg != nil {
				typ = inputEnv.typeOf(a.Arg)
			}
		}
		cols = append(cols, ColDef{Name: a.Name, Type: typ})
	}
	return colEnv{queryName: queryName, bindings: []binding{{"", cols}}}
}

// aggRewriter rewrites select/HAVING expressions of an aggregation
// into expressions over group names and aggregate output names,
// registering AggDefs as it finds aggregate calls.
type aggRewriter struct {
	b    *builder
	q    *gsql.Query
	env  colEnv
	node *Node
	pos  gsql.Pos // position of the select item / clause being rewritten
}

func (rw *aggRewriter) rewrite(e gsql.Expr, alias string) (gsql.Expr, error) {
	// Whole expression equal to a group-by expression?
	for _, g := range rw.node.GroupBy {
		if gsql.EqualExpr(e, g.Expr) {
			return &gsql.ColumnRef{Name: g.Name}, nil
		}
	}
	switch t := e.(type) {
	case *gsql.ColumnRef:
		// A bare reference to a group name.
		for _, g := range rw.node.GroupBy {
			if t.Qualifier == "" && strings.EqualFold(t.Name, g.Name) {
				return &gsql.ColumnRef{Name: g.Name}, nil
			}
		}
		return nil, errf(rw.q.Name, rw.pos, "column %s must appear in GROUP BY or inside an aggregate", t)
	case *gsql.NumberLit, *gsql.StringLit, *gsql.ParamRef:
		return gsql.CloneExpr(e), nil
	case *gsql.Unary:
		x, err := rw.rewrite(t.X, "")
		if err != nil {
			return nil, err
		}
		return &gsql.Unary{Op: t.Op, X: x}, nil
	case *gsql.Binary:
		l, err := rw.rewrite(t.L, "")
		if err != nil {
			return nil, err
		}
		r, err := rw.rewrite(t.R, "")
		if err != nil {
			return nil, err
		}
		return &gsql.Binary{Op: t.Op, L: l, R: r}, nil
	case *gsql.FuncCall:
		if !gsql.IsAggregateName(t.Name) {
			args := make([]gsql.Expr, len(t.Args))
			for i, a := range t.Args {
				x, err := rw.rewrite(a, "")
				if err != nil {
					return nil, err
				}
				args[i] = x
			}
			return &gsql.FuncCall{Name: t.Name, Star: t.Star, Args: args}, nil
		}
		name, err := rw.addAgg(t, alias)
		if err != nil {
			return nil, err
		}
		return &gsql.ColumnRef{Name: name}, nil
	default:
		return nil, errf(rw.q.Name, rw.pos, "unsupported expression %T", e)
	}
}

func (rw *aggRewriter) addAgg(call *gsql.FuncCall, alias string) (string, error) {
	spec, _ := gsql.LookupAgg(call.Name)
	var arg gsql.Expr
	if !call.Star && len(call.Args) == 1 {
		arg = call.Args[0]
		if gsql.HasAggregate(arg) {
			return "", errf(rw.q.Name, rw.pos, "nested aggregate in %s", call)
		}
		if err := rw.env.at(rw.pos).validate(arg, "aggregate argument"); err != nil {
			return "", err
		}
	}
	// Reuse an existing identical aggregate.
	for _, a := range rw.node.Aggs {
		if a.Spec.Name == spec.Name && gsql.EqualExpr(a.Arg, arg) {
			return a.Name, nil
		}
	}
	name := alias
	if name == "" {
		name = fmt.Sprintf("_agg%d", len(rw.node.Aggs))
	}
	for _, g := range rw.node.GroupBy {
		if strings.EqualFold(g.Name, name) {
			name = fmt.Sprintf("_agg%d", len(rw.node.Aggs))
			break
		}
	}
	rw.node.Aggs = append(rw.node.Aggs, AggDef{Name: name, Spec: spec, Arg: arg})
	return name, nil
}

// ---- join ----

func (b *builder) buildJoin(q *gsql.Query) (*Node, error) {
	stmt := q.Stmt
	left, err := b.input(q.Name, stmt.From.Left)
	if err != nil {
		return nil, err
	}
	right, err := b.input(q.Name, stmt.From.Right)
	if err != nil {
		return nil, err
	}
	lb, rb := stmt.From.Left.Binding(), stmt.From.Right.Binding()
	if strings.EqualFold(lb, rb) {
		return nil, errf(q.Name, stmt.From.Right.Pos, "join inputs must have distinct bindings (got %q twice)", lb)
	}
	leftEnv := colEnv{queryName: q.Name, pos: q.Pos, bindings: []binding{{lb, left.OutCols}}}
	rightEnv := colEnv{queryName: q.Name, pos: q.Pos, bindings: []binding{{rb, right.OutCols}}}
	combined := colEnv{queryName: q.Name, pos: q.Pos, bindings: []binding{{lb, left.OutCols}, {rb, right.OutCols}}}

	n := b.newNode(KindJoin, q.Name)
	n.Pos = q.Pos
	n.JoinType = stmt.From.Join
	n.LeftBind, n.RightBind = lb, rb

	// Gather conjuncts from WHERE and ON.
	var conjuncts []gsql.Expr
	collect := func(e gsql.Expr) {
		var split func(gsql.Expr)
		split = func(x gsql.Expr) {
			if bin, ok := x.(*gsql.Binary); ok && bin.Op == gsql.OpAnd {
				split(bin.L)
				split(bin.R)
				return
			}
			conjuncts = append(conjuncts, x)
		}
		split(e)
	}
	if stmt.From.On != nil {
		collect(stmt.From.On)
	}
	if stmt.Where != nil {
		collect(stmt.Where)
	}

	andWith := func(dst gsql.Expr, c gsql.Expr) gsql.Expr {
		if dst == nil {
			return c
		}
		return &gsql.Binary{Op: gsql.OpAnd, L: dst, R: c}
	}

	leftIdx, rightIdx := 0, 1
	predPos := stmt.WherePos
	if stmt.From.On != nil || !predPos.IsValid() {
		predPos = q.Pos
	}
	for _, c := range conjuncts {
		if err := combined.at(predPos).validate(c, "WHERE"); err != nil {
			return nil, err
		}
		used, err := combined.sidesUsed(c)
		if err != nil {
			return nil, err
		}
		switch {
		case used[leftIdx] && used[rightIdx]:
			if bin, ok := c.(*gsql.Binary); ok && bin.Op == gsql.OpEq {
				lu, _ := combined.sidesUsed(bin.L)
				ru, _ := combined.sidesUsed(bin.R)
				switch {
				case lu[leftIdx] && !lu[rightIdx] && ru[rightIdx] && !ru[leftIdx]:
					n.LeftKeys = append(n.LeftKeys, bin.L)
					n.RightKeys = append(n.RightKeys, bin.R)
					continue
				case lu[rightIdx] && !lu[leftIdx] && ru[leftIdx] && !ru[rightIdx]:
					n.LeftKeys = append(n.LeftKeys, bin.R)
					n.RightKeys = append(n.RightKeys, bin.L)
					continue
				}
			}
			n.Residual = andWith(n.Residual, c)
		case used[leftIdx]:
			n.LeftFilter = andWith(n.LeftFilter, c)
		case used[rightIdx]:
			n.RightFilter = andWith(n.RightFilter, c)
		default:
			n.Residual = andWith(n.Residual, c)
		}
	}
	if len(n.LeftKeys) == 0 {
		return nil, errf(q.Name, predPos, "join requires at least one equality predicate between the inputs")
	}
	if n.JoinType != gsql.JoinInner && n.Residual != nil {
		return nil, errf(q.Name, predPos, "outer join with non-equality cross predicates is not supported")
	}

	// Identify the temporal key pair (window alignment).
	for i := range n.LeftKeys {
		ll := leftEnv.lineageOf(n.LeftKeys[i])
		rl := rightEnv.lineageOf(n.RightKeys[i])
		if ll.Temporal && rl.Temporal {
			n.TemporalKey = i
			break
		}
	}
	if n.TemporalKey < 0 {
		return nil, errf(q.Name, predPos, "tumbling-window join requires an equality predicate relating the temporal attributes of both inputs")
	}

	// Projections.
	names := uniquifyNames(stmt.Items)
	for i, it := range stmt.Items {
		if gsql.HasAggregate(it.Expr) {
			return nil, errf(q.Name, it.Pos, "aggregate in join select list; aggregate in a separate query")
		}
		if err := combined.at(it.Pos).validate(it.Expr, "SELECT"); err != nil {
			return nil, err
		}
		n.JoinProjs = append(n.JoinProjs, NamedExpr{Name: names[i], Expr: it.Expr})
		lin := combined.lineageOf(it.Expr)
		// An expression mixing both sides is not a function of a single
		// input tuple's attribute even when, as in a self-join, both
		// sides trace to the same base attribute.
		if used, err := combined.sidesUsed(it.Expr); err == nil && len(used) > 1 {
			lin.Base = nil
		}
		n.OutCols = append(n.OutCols, ColDef{
			Name:    names[i],
			Type:    combined.typeOf(it.Expr),
			Lineage: lin,
		})
	}
	connect(left, n)
	connect(right, n)
	return n, nil
}
