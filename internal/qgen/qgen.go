// Package qgen is a seeded, deterministic generator of random — but
// valid — GSQL query DAGs over the netgen TCP schema, together with a
// matching random trace configuration. It is the workload half of the
// differential-testing subsystem (internal/difftest holds the oracle):
// every generated workload exercises the partitioning theorems of
// paper Sections 3–5 on query shapes nobody hand-wrote.
//
// The generator composes selection/projection, tumbling-window
// aggregations with random group-by subsets (including coarsened keys
// like srcIP & 0xFF00), equi-joins including the outer variants, DAG
// fan-out (several queries reading one upstream query, which the
// optimizer turns into physical unions), and random HAVING / WINDOW /
// holistic-aggregate sprinkles. Validity is guaranteed two ways: the
// grammar below only emits shapes plan.Build accepts, and every
// emitted query is re-validated through the real parser and planner —
// a candidate the planner rejects is discarded and redrawn, so a
// Workload always loads.
//
// Everything is a pure function of Config.Seed: the same seed yields
// the same query text and the same trace, which is what makes
// cmd/qap-difftest's -seed reproduction mode possible.
package qgen

import (
	"fmt"
	"math/rand" //qap:allow walltime -- generation is a pure function of Config.Seed
	"strings"

	"qap/internal/gsql"
	"qap/internal/netgen"
	"qap/internal/plan"
	"qap/internal/schema"
)

// Config seeds and sizes one generated workload.
type Config struct {
	// Seed determines everything: query shapes and trace parameters.
	Seed int64
	// MaxQueries bounds the DAG size; 0 draws 3–5 from the seed.
	MaxQueries int
}

// Workload is one generated differential-test input: a schema, a query
// set guaranteed to load, and the trace configuration to drive it.
type Workload struct {
	Seed    int64
	DDL     string
	Queries string
	Trace   netgen.Config
}

// colInfo tracks what the generator may legally do with one output
// column of a generated query.
type colInfo struct {
	Name string
	// Temporal: lineage reaches the base temporal attribute, so the
	// column can anchor a downstream tumbling window or temporal join
	// key. Epoch additionally marks it as already divided (time/N).
	Temporal, Epoch bool
	// Float columns only appear as MIN/MAX arguments or passthroughs
	// downstream: float sums are not associative, so feeding them to
	// SUM/AVG/VARIANCE would make the distributed result depend on
	// partial-aggregation order — a false differential mismatch.
	Float bool
	// Small marks values bounded well under 2^17, keeping float
	// moment accumulators (AVG/VARIANCE sums of squares) exactly
	// representable and therefore order-independent.
	Small bool
	// Nullable: outer-join padding can make the value NULL.
	Nullable bool
}

// nodeInfo is the generator's model of one DAG node's output.
type nodeInfo struct {
	Name string
	Cols []colInfo
	// Agg marks reduced-cardinality outputs (safe to join without an
	// extra equi-key); Join marks join outputs (never re-joined, to
	// bound fan-out); Base marks the TCP source.
	Agg, Join, Base bool
	TemporalIdx     int // index into Cols, -1 when no usable temporal column
}

func (n nodeInfo) temporal() (colInfo, bool) {
	if n.TemporalIdx < 0 {
		return colInfo{}, false
	}
	return n.Cols[n.TemporalIdx], true
}

// gen carries generator state.
type gen struct {
	r       *rand.Rand
	cat     *schema.Catalog
	nodes   []nodeInfo
	queries []string
	joins   int
	nextCol int
}

// baseNode models the netgen TCP schema. Magnitudes: ports, len,
// flags, seq and (short-trace) time are small; addresses are not.
func baseNode() nodeInfo {
	return nodeInfo{
		Name: "TCP",
		Base: true,
		Cols: []colInfo{
			{Name: "time", Temporal: true, Small: true},
			{Name: "srcIP"},
			{Name: "destIP"},
			{Name: "srcPort", Small: true},
			{Name: "destPort", Small: true},
			{Name: "len", Small: true},
			{Name: "flags", Small: true},
			{Name: "seq", Small: true},
		},
		TemporalIdx: 0,
	}
}

// Generate builds the workload for cfg. It always succeeds: candidate
// queries the planner rejects are redrawn, and the workload keeps
// whatever prefix validated if the draw budget runs out.
func Generate(cfg Config) *Workload {
	r := rand.New(rand.NewSource(cfg.Seed))
	want := cfg.MaxQueries
	if want <= 0 {
		want = 3 + r.Intn(3)
	}
	cat, err := schema.Parse(netgen.SchemaDDL)
	if err != nil {
		panic(fmt.Sprintf("qgen: base schema must parse: %v", err))
	}
	g := &gen{r: r, cat: cat, nodes: []nodeInfo{baseNode()}}

	for len(g.queries) < want {
		accepted := false
		for attempt := 0; attempt < 20; attempt++ {
			text, info := g.genQuery()
			if text == "" {
				continue
			}
			candidate := strings.Join(append(append([]string{}, g.queries...), text), "\n\n")
			if !g.loads(candidate) {
				continue
			}
			g.queries = append(g.queries, text)
			g.nodes = append(g.nodes, info)
			accepted = true
			break
		}
		if !accepted {
			// Fall back to a shape that is always valid, so every
			// workload has at least `want` queries.
			name := fmt.Sprintf("q%d", len(g.queries)+1)
			text := fmt.Sprintf("query %s:\nSELECT tb, COUNT(*) AS cnt\nFROM TCP\nGROUP BY time/60 AS tb", name)
			g.queries = append(g.queries, text)
			g.nodes = append(g.nodes, nodeInfo{
				Name: name, Agg: true, TemporalIdx: 0,
				Cols: []colInfo{
					{Name: "tb", Temporal: true, Epoch: true, Small: true},
					{Name: "cnt", Small: true},
				},
			})
		}
	}

	return &Workload{
		Seed:    cfg.Seed,
		DDL:     netgen.SchemaDDL,
		Queries: strings.Join(g.queries, "\n\n"),
		Trace:   g.genTrace(cfg.Seed),
	}
}

// loads re-validates a candidate query set through the real parser and
// planner — the generator's grammar is deliberately conservative, but
// the planner stays the single source of truth for validity.
func (g *gen) loads(queries string) bool {
	qs, err := gsql.ParseQuerySet(queries)
	if err != nil {
		return false
	}
	_, err = plan.Build(g.cat, qs)
	return err == nil
}

// genTrace draws a deliberately small trace: differential sweeps run
// hundreds of configurations, and join fan-out grows quadratically
// with the per-epoch packet count. Streams with a base-level join get
// the smallest traces.
func (g *gen) genTrace(seed int64) netgen.Config {
	cfg := netgen.Config{
		Seed:            seed,
		DurationSec:     5 + g.r.Intn(8),
		PacketsPerSec:   60 + g.r.Intn(120),
		SrcHosts:        1 + g.r.Intn(30),
		DstHosts:        1 + g.r.Intn(15),
		ZipfS:           1.05 + g.r.Float64(),
		MeanFlowPackets: 1 + 9*g.r.Float64(),
		AttackFraction:  g.r.Float64() * 0.3,
		Ports:           4 + g.r.Intn(500),
	}
	if g.joins > 0 {
		cfg.DurationSec = 5 + g.r.Intn(3)
		cfg.PacketsPerSec = 40 + g.r.Intn(60)
	}
	// The draw ranges above keep every field valid by construction;
	// Validate guards that invariant against future range edits (an
	// invalid config would otherwise panic deep inside Generate).
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("qgen: genTrace produced an invalid config: %v", err))
	}
	return cfg
}

// genQuery draws one query. Empty text means the draw was infeasible
// (e.g. no join-eligible inputs) and the caller should redraw.
func (g *gen) genQuery() (string, nodeInfo) {
	name := fmt.Sprintf("q%d", len(g.queries)+1)
	p := g.r.Float64()
	switch {
	case p < 0.30 && g.joins < 2:
		return g.genJoin(name)
	case p < 0.75:
		return g.genAggregate(name)
	default:
		return g.genSelProj(name)
	}
}

// pickInput draws an upstream node, weighting the base stream double
// so DAGs keep fanning out from the source.
func (g *gen) pickInput(need func(nodeInfo) bool) (nodeInfo, bool) {
	var elig []nodeInfo
	for _, n := range g.nodes {
		if need == nil || need(n) {
			elig = append(elig, n)
			if n.Base {
				elig = append(elig, n) // double weight
			}
		}
	}
	if len(elig) == 0 {
		return nodeInfo{}, false
	}
	return elig[g.r.Intn(len(elig))], true
}

func (g *gen) alias(prefix string) string {
	g.nextCol++
	return fmt.Sprintf("%s%d", prefix, g.nextCol)
}

// intCols returns the indexes of in's integer (non-float) columns,
// excluding the temporal one.
func intCols(in nodeInfo) []int {
	var idx []int
	for i, c := range in.Cols {
		if !c.Float && i != in.TemporalIdx {
			idx = append(idx, i)
		}
	}
	return idx
}

// literalFor draws a comparison literal in the column's value range.
func (g *gen) literalFor(c colInfo) string {
	if c.Small {
		return fmt.Sprintf("%d", g.r.Intn(1500))
	}
	if g.r.Intn(2) == 0 {
		return fmt.Sprintf("%d", 0x0A000000+uint64(g.r.Intn(40)))
	}
	return fmt.Sprintf("%d", 0xC0A80000+uint64(g.r.Intn(20)))
}

var cmpOps = []string{"<", "<=", ">", ">=", "<>"}

// genFilter renders a WHERE conjunction over qualified or bare column
// references.
func (g *gen) genFilter(in nodeInfo, qual string) string {
	n := 1 + g.r.Intn(2)
	var conj []string
	for i := 0; i < n; i++ {
		c := in.Cols[g.r.Intn(len(in.Cols))]
		ref := c.Name
		if qual != "" {
			ref = qual + "." + c.Name
		}
		op := cmpOps[g.r.Intn(len(cmpOps))]
		conj = append(conj, fmt.Sprintf("%s %s %s", ref, op, g.literalFor(c)))
	}
	if len(conj) == 2 && g.r.Float64() < 0.3 {
		return conj[0] + " OR " + conj[1]
	}
	return strings.Join(conj, " AND ")
}

// derived renders a scalar transformation of an integer column and the
// resulting colInfo. These are the shapes core.ParseElem classifies
// (mask, divide, modulo), plus a small additive shift.
func (g *gen) derived(c colInfo) (string, colInfo) {
	out := colInfo{Nullable: c.Nullable, Small: c.Small}
	switch g.r.Intn(4) {
	case 0:
		masks := []uint64{0x3F, 0xFF, 0xFF00, 0xFFF0}
		m := masks[g.r.Intn(len(masks))]
		if m <= 0xFFFF {
			out.Small = true
		}
		return fmt.Sprintf("%s & 0x%X", c.Name, m), out
	case 1:
		divs := []uint64{2, 16, 256}
		return fmt.Sprintf("%s / %d", c.Name, divs[g.r.Intn(len(divs))]), out
	case 2:
		mods := []uint64{8, 64, 1024}
		out.Small = true
		return fmt.Sprintf("%s %% %d", c.Name, mods[g.r.Intn(len(mods))]), out
	default:
		return fmt.Sprintf("%s + %d", c.Name, 1+g.r.Intn(7)), out
	}
}

// genSelProj draws a selection/projection over one input.
func (g *gen) genSelProj(name string) (string, nodeInfo) {
	in, ok := g.pickInput(nil)
	if !ok {
		return "", nodeInfo{}
	}
	info := nodeInfo{Name: name, TemporalIdx: -1}
	var items []string

	// Keep the temporal column (when present) so downstream queries
	// can still window and join.
	if t, ok := in.temporal(); ok {
		info.TemporalIdx = 0
		info.Cols = append(info.Cols, t)
		items = append(items, t.Name)
	}
	picked := 0
	for i, c := range in.Cols {
		if i == in.TemporalIdx || g.r.Float64() > 0.6 {
			continue
		}
		picked++
		if !c.Float && g.r.Float64() < 0.35 {
			expr, derived := g.derived(c)
			derived.Name = g.alias("c")
			items = append(items, fmt.Sprintf("%s AS %s", expr, derived.Name))
			info.Cols = append(info.Cols, derived)
		} else {
			items = append(items, c.Name)
			info.Cols = append(info.Cols, c)
		}
	}
	if picked == 0 {
		idx := intCols(in)
		if len(idx) == 0 {
			return "", nodeInfo{}
		}
		c := in.Cols[idx[g.r.Intn(len(idx))]]
		items = append(items, c.Name)
		info.Cols = append(info.Cols, c)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "query %s:\nSELECT %s\nFROM %s", name, strings.Join(items, ", "), in.Name)
	if g.r.Float64() < 0.5 {
		fmt.Fprintf(&b, "\nWHERE %s", g.genFilter(in, ""))
	}
	return b.String(), info
}

// aggDef is one drawn aggregate: its call text, alias, and output
// colInfo traits.
type aggDef struct {
	call       string
	out        colInfo
	splittable bool
}

// genAggs draws 1–3 aggregate calls over the input's columns.
func (g *gen) genAggs(in nodeInfo) []aggDef {
	ints := intCols(in)
	smallInts := make([]int, 0, len(ints))
	for _, i := range ints {
		if in.Cols[i].Small {
			smallInts = append(smallInts, i)
		}
	}
	pick := func(idx []int) colInfo { return in.Cols[idx[g.r.Intn(len(idx))]] }

	n := 1 + g.r.Intn(3)
	var defs []aggDef
	seen := map[string]bool{}
	for len(defs) < n {
		var d aggDef
		d.splittable = true
		switch w := g.r.Intn(12); {
		case w < 3:
			d.call = "COUNT(*)"
			d.out = colInfo{Small: true}
		case w < 5 && len(ints) > 0:
			c := pick(ints)
			d.call = fmt.Sprintf("SUM(%s)", c.Name)
			d.out = colInfo{Nullable: c.Nullable} // not Small: sums grow
		case w < 7:
			c := in.Cols[g.r.Intn(len(in.Cols))]
			fn := "MIN"
			if g.r.Intn(2) == 0 {
				fn = "MAX"
			}
			d.call = fmt.Sprintf("%s(%s)", fn, c.Name)
			d.out = colInfo{Float: c.Float, Small: c.Small, Nullable: c.Nullable}
		case w < 9 && len(smallInts) > 0:
			c := pick(smallInts)
			d.call = fmt.Sprintf("AVG(%s)", c.Name)
			d.out = colInfo{Float: true, Nullable: c.Nullable}
		case w < 10 && len(ints) > 0:
			c := pick(ints)
			fns := []string{"OR_AGGR", "AND_AGGR", "XOR_AGGR"}
			d.call = fmt.Sprintf("%s(%s)", fns[g.r.Intn(3)], c.Name)
			d.out = colInfo{Small: c.Small, Nullable: c.Nullable}
		case w < 11 && len(smallInts) > 0:
			c := pick(smallInts)
			fn := "VARIANCE"
			if g.r.Intn(2) == 0 {
				fn = "STDDEV"
			}
			d.call = fmt.Sprintf("%s(%s)", fn, c.Name)
			d.out = colInfo{Float: true, Nullable: c.Nullable}
		case len(ints) > 0:
			c := pick(ints)
			fn := "COUNT_DISTINCT" // the holistic sprinkle (paper §5.2.2 limits)
			d.splittable = false
			if g.r.Intn(3) == 0 {
				fn = "APPROX_COUNT_DISTINCT" // HLL: splittable sketch
				d.splittable = true
			}
			d.call = fmt.Sprintf("%s(%s)", fn, c.Name)
			d.out = colInfo{Small: true}
		default:
			continue
		}
		if seen[d.call] {
			continue
		}
		seen[d.call] = true
		d.out.Name = g.alias("a")
		defs = append(defs, d)
	}
	return defs
}

// genAggregate draws a tumbling-window aggregation: a temporal group
// term, a random subset of (possibly coarsened) group keys, random
// aggregates, and optional HAVING / WINDOW clauses.
func (g *gen) genAggregate(name string) (string, nodeInfo) {
	in, ok := g.pickInput(func(n nodeInfo) bool {
		t, ok := n.temporal()
		return ok && !t.Nullable
	})
	if !ok {
		return "", nodeInfo{}
	}
	t, _ := in.temporal()
	info := nodeInfo{Name: name, Agg: true, TemporalIdx: 0}

	// Temporal group term: divide raw time into epochs, or reuse /
	// coarsen an upstream epoch column.
	var groupItems, selItems []string
	tb := colInfo{Name: t.Name, Temporal: true, Epoch: true, Small: true}
	switch {
	case !t.Epoch:
		epochs := []int{5, 10, 30, 60}
		tb.Name = "tb"
		groupItems = append(groupItems, fmt.Sprintf("%s/%d AS tb", t.Name, epochs[g.r.Intn(len(epochs))]))
	case g.r.Float64() < 0.4:
		tb.Name = "tb"
		groupItems = append(groupItems, fmt.Sprintf("%s/%d AS tb", t.Name, 2+g.r.Intn(3)))
	default:
		groupItems = append(groupItems, t.Name)
	}
	selItems = append(selItems, tb.Name)
	info.Cols = append(info.Cols, tb)

	// Random group-key subset, coarsened now and then.
	keys := intCols(in)
	for _, i := range keys {
		if g.r.Float64() > 0.4 || len(groupItems) > 3 {
			continue
		}
		c := in.Cols[i]
		if g.r.Float64() < 0.3 {
			expr, derived := g.derived(c)
			derived.Name = g.alias("k")
			groupItems = append(groupItems, fmt.Sprintf("%s AS %s", expr, derived.Name))
			selItems = append(selItems, derived.Name)
			info.Cols = append(info.Cols, derived)
		} else {
			groupItems = append(groupItems, c.Name)
			selItems = append(selItems, c.Name)
			info.Cols = append(info.Cols, c)
		}
	}

	defs := g.genAggs(in)
	splittable := true
	for _, d := range defs {
		selItems = append(selItems, fmt.Sprintf("%s AS %s", d.call, d.out.Name))
		info.Cols = append(info.Cols, d.out)
		splittable = splittable && d.splittable
	}

	var b strings.Builder
	fmt.Fprintf(&b, "query %s:\nSELECT %s\nFROM %s", name, strings.Join(selItems, ", "), in.Name)
	if g.r.Float64() < 0.3 {
		fmt.Fprintf(&b, "\nWHERE %s", g.genFilter(in, ""))
	}
	fmt.Fprintf(&b, "\nGROUP BY %s", strings.Join(groupItems, ", "))
	if g.r.Float64() < 0.3 {
		// HAVING over one of the drawn aggregates; integer thresholds
		// only (float equality would be fragile, not wrong).
		d := defs[g.r.Intn(len(defs))]
		op := []string{">", ">="}[g.r.Intn(2)]
		fmt.Fprintf(&b, "\nHAVING %s %s %d", d.call, op, 1+g.r.Intn(4))
	}
	if splittable && g.r.Float64() < 0.15 {
		fmt.Fprintf(&b, "\nWINDOW %d", 2+g.r.Intn(3))
	}
	return b.String(), info
}

// genJoin draws a two-input equi-join with a temporal key pair and,
// for unreduced inputs, at least one extra equi-key to bound fan-out.
func (g *gen) genJoin(name string) (string, nodeInfo) {
	eligible := func(n nodeInfo) bool {
		if n.Join {
			return false
		}
		t, ok := n.temporal()
		return ok && !t.Nullable
	}
	left, ok := g.pickInput(eligible)
	if !ok {
		return "", nodeInfo{}
	}
	right, ok := g.pickInput(eligible)
	if !ok {
		return "", nodeInfo{}
	}
	lt, _ := left.temporal()
	rt, _ := right.temporal()
	// Match temporal granularity: raw time joins raw time, epochs join
	// epochs (misaligned epochs would still build, but add nothing).
	if lt.Epoch != rt.Epoch {
		return "", nodeInfo{}
	}

	jt := "inner"
	switch p := g.r.Float64(); {
	case p < 0.15:
		jt = "LEFT"
	case p < 0.25:
		jt = "RIGHT"
	case p < 0.40:
		jt = "FULL"
	case p < 0.50:
		jt = "JOIN" // explicit inner JOIN ... ON
	}

	// Key predicates: the temporal pair first.
	temporalKey := fmt.Sprintf("S1.%s = S2.%s", lt.Name, rt.Name)
	if jt == "inner" && lt.Epoch && g.r.Float64() < 0.15 {
		// The paper's flow_pairs pattern: consecutive epochs.
		temporalKey = fmt.Sprintf("S1.%s = S2.%s + 1", lt.Name, rt.Name)
	}
	preds := []string{temporalKey}

	lk, rk := intCols(left), intCols(right)
	extra := g.r.Intn(3)
	if !left.Agg || !right.Agg {
		extra = 1 + g.r.Intn(2) // unreduced input: force a selective key
	}
	for i := 0; i < extra && len(lk) > 0 && len(rk) > 0; i++ {
		var lc, rc colInfo
		if pair, ok := g.sameNamePair(left, right, lk, rk); ok && g.r.Float64() < 0.7 {
			lc, rc = pair[0], pair[1]
		} else {
			lc = left.Cols[lk[g.r.Intn(len(lk))]]
			rc = right.Cols[rk[g.r.Intn(len(rk))]]
		}
		preds = append(preds, fmt.Sprintf("S1.%s = S2.%s", lc.Name, rc.Name))
	}

	// Select list: preserved-side temporal first, then a few columns
	// from each side, all aliased (the two sides may share names).
	info := nodeInfo{Name: name, Join: true, TemporalIdx: -1}
	var items []string
	leftNullable := jt == "RIGHT" || jt == "FULL"
	rightNullable := jt == "LEFT" || jt == "FULL"
	if jt != "FULL" {
		side, bind, nullable := lt, "S1", leftNullable
		if jt == "RIGHT" {
			side, bind, nullable = rt, "S2", rightNullable
		}
		out := side
		out.Name = g.alias("t")
		out.Nullable = nullable
		items = append(items, fmt.Sprintf("%s.%s AS %s", bind, side.Name, out.Name))
		info.TemporalIdx = 0
		info.Cols = append(info.Cols, out)
	}
	addCols := func(n nodeInfo, bind string, nullable bool, count int) {
		for i := 0; i < count; i++ {
			c := n.Cols[g.r.Intn(len(n.Cols))]
			out := c
			out.Name = g.alias("j")
			out.Temporal, out.Epoch = false, false
			out.Nullable = c.Nullable || nullable
			items = append(items, fmt.Sprintf("%s.%s AS %s", bind, c.Name, out.Name))
			info.Cols = append(info.Cols, out)
		}
	}
	addCols(left, "S1", leftNullable, 1+g.r.Intn(2))
	addCols(right, "S2", rightNullable, 1+g.r.Intn(2))

	var b strings.Builder
	fmt.Fprintf(&b, "query %s:\nSELECT %s\n", name, strings.Join(items, ", "))
	switch jt {
	case "inner":
		fmt.Fprintf(&b, "FROM %s S1, %s S2\nWHERE %s", left.Name, right.Name, strings.Join(preds, " AND "))
		if g.r.Float64() < 0.25 {
			fmt.Fprintf(&b, " AND %s", g.genFilter(left, "S1"))
		}
	case "JOIN":
		fmt.Fprintf(&b, "FROM %s S1 JOIN %s S2 ON %s", left.Name, right.Name, strings.Join(preds, " AND "))
	default:
		fmt.Fprintf(&b, "FROM %s S1 %s OUTER JOIN %s S2 ON %s", left.Name, jt, right.Name, strings.Join(preds, " AND "))
	}
	g.joins++
	return b.String(), info
}

// sameNamePair looks for an integer column name both sides share (the
// natural srcIP = srcIP style key).
func (g *gen) sameNamePair(left, right nodeInfo, lk, rk []int) ([2]colInfo, bool) {
	var pairs [][2]colInfo
	for _, li := range lk {
		for _, ri := range rk {
			if strings.EqualFold(left.Cols[li].Name, right.Cols[ri].Name) {
				pairs = append(pairs, [2]colInfo{left.Cols[li], right.Cols[ri]})
			}
		}
	}
	if len(pairs) == 0 {
		return [2]colInfo{}, false
	}
	return pairs[g.r.Intn(len(pairs))], true
}
