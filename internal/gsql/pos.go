package gsql

import "fmt"

// Pos is a 1-based source position (line and column) in the query-set
// text, taken from the token that begins the construct. The zero Pos
// is "unknown" and renders as "-".
type Pos struct {
	Line int
	Col  int
}

// IsValid reports whether p carries a real source position.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders the position as "line:col", or "-" when unknown.
func (p Pos) String() string {
	if !p.IsValid() {
		return "-"
	}
	return fmt.Sprintf("%d:%d", p.Line, p.Col)
}

// PosOf returns a token's position.
func PosOf(t Token) Pos { return Pos{Line: t.Line, Col: t.Col} }

// Error is a positioned gsql error. Every parse and lex failure is an
// *Error so that callers (the plan builder, the lint engine, the cmds)
// can render diagnostics in a uniform "line:col" format.
type Error struct {
	Pos Pos
	Msg string
}

// Error renders "gsql: line:col: msg", omitting the position when it
// is unknown.
func (e *Error) Error() string {
	if !e.Pos.IsValid() {
		return "gsql: " + e.Msg
	}
	return fmt.Sprintf("gsql: %s: %s", e.Pos, e.Msg)
}

// Errorf builds a positioned *Error.
func Errorf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ErrPos extracts the position carried by err, descending through
// wrapped errors. It returns the zero Pos when err carries none. Both
// gsql parse errors and plan build errors (which embed a gsql.Pos)
// satisfy the posCarrier interface.
func ErrPos(err error) Pos {
	for err != nil {
		if pc, ok := err.(posCarrier); ok {
			return pc.SourcePos()
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return Pos{}
		}
		err = u.Unwrap()
	}
	return Pos{}
}

// SourcePos makes *Error a posCarrier.
func (e *Error) SourcePos() Pos { return e.Pos }

type posCarrier interface{ SourcePos() Pos }
