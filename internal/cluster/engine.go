package cluster

// The parallel execution engine.
//
// The sequential engine (runner.go) drives the merged packet trace
// through the whole operator graph on one goroutine in a canonical
// order: rounds of distinct timestamps, each round advancing every
// stream's router (cursor order x partition order) and then pushing the
// round's packets in merged arrival order, with a final flush round
// over the routers in sorted-name order.
//
// The parallel engine reproduces exactly that event sequence while
// running the per-host operator chains concurrently:
//
//   - The plan decomposes into islands (runner.go): one leaf island per
//     simulated host (its capture processes) plus the central island
//     (the root process on the aggregator host). The optimizer only
//     builds plans whose island-crossing dataflow points into the
//     central island; parallelizable() verifies this and otherwise the
//     Runner falls back to the sequential engine.
//
//   - A driver goroutine plays the splitter: it merges the input
//     cursors in canonical order, evaluates each tuple's route (hash or
//     round-robin), and feeds every island its per-round action list —
//     watermark advances, tuple pushes, final flushes — over bounded
//     channels, batching batchRounds rounds per message.
//
//   - One worker goroutine per min(Workers, Hosts) executes the leaf
//     islands (worker g owns islands g, g+W, ...). Each action carries
//     a canonical tag; deliveries that cross into the central island
//     are not executed by the worker but recorded as tagged linkItems
//     (the capture consumer) and shipped to the central inbox. Every
//     processed feed message emits a linkBatch — even when empty — so
//     the central watermark advances.
//
//   - The central replay loop, on the calling goroutine, K-way-merges
//     the islands' linkItems by (round, tag) and applies them to the
//     central operators. A tag identifies one splitter action (advance,
//     push, or flush), every action's cascade runs on exactly one
//     island, and each island emits its items in canonical order — so
//     the merge reconstructs the sequential delivery order exactly.
//     Per-island "through" watermarks (the last fully shipped round)
//     gate the merge: an item is applied only once every island has
//     shipped past its round.
//
// Accounting is sharded per island in both engines and merged in a
// fixed order by finalize(), so floating-point sums group identically
// and parallel results are byte-identical to sequential ones.

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"qap/internal/exec"
	"qap/internal/netgen"
	"qap/internal/obs/trace"
	"qap/internal/sqlval"
)

// defaultBatchRounds is how many watermark rounds the driver coalesces
// into one channel message when RunConfig.BatchRounds is unset. Rounds
// are small (a handful of packets at typical trace rates), so batching
// amortizes channel synchronization across the pipeline.
const defaultBatchRounds = 32

// defaultBatchSize is the execution batch size when RunConfig.BatchSize
// is unset: batch-at-a-time execution is the default hot path.
const defaultBatchSize = 256

// feedChanCap bounds each worker's feed channel: the driver may run at
// most this many messages ahead of a worker, which also bounds the
// central replay loop's pending queues.
const feedChanCap = 2

// testStallWorkers, when non-nil, blocks every worker just before it
// ships a link batch until the channel is closed — the test harness for
// the DriveTimeout guard (a wedged worker must surface as a positioned
// error, not a hang). Set and cleared only between runs; runParallel
// reads it once at start.
var testStallWorkers chan struct{}

// Canonical tags. Within one round the sequential engine performs
// watermark advances (cursor order x partition order), then tuple
// pushes (merged arrival order), then — in the one flush round — router
// flushes (sorted-name order x partition order). The tag encodes
// phase<<48 | key so that tag order within a round equals execution
// order, and every tag maps to exactly one island.
const (
	phaseAdv   = uint64(0) << 48
	phasePush  = uint64(1) << 48
	phaseFlush = uint64(2) << 48
)

type linkKind uint8

const (
	itemPush linkKind = iota
	itemPushBatch
	itemAdvance
	itemFlush
)

// linkItem is one captured delivery across an island boundary.
type linkItem struct {
	round int
	tag   uint64
	kind  linkKind
	e     *edge
	t     exec.Tuple
	b     exec.Batch
	wm    uint64
	// mwm is the producing round's watermark (the flush round inherits
	// the last data round's), stamped on every item so the central
	// replay closes monitoring windows at the same trace times the
	// sequential engine does. Distinct from wm: an advance cascade may
	// forward a different watermark than the round's.
	mwm uint64
}

// linkBatch ships an island's captured deliveries for a range of
// rounds. through is the last round fully contained in the batch; done
// marks the island's final batch.
type linkBatch struct {
	isl     int
	through int
	done    bool
	items   []linkItem
}

// capture replaces an island-crossing edge on the producing island: it
// records the delivery instead of performing it. The central replay
// loop applies the recorded items in canonical order.
type capture struct {
	isl *island
	e   *edge
}

func (c *capture) Push(t exec.Tuple) {
	c.isl.outbox = append(c.isl.outbox, linkItem{
		round: c.isl.curRound, tag: c.isl.curTag, kind: itemPush, e: c.e, t: t,
		mwm: c.isl.curWM,
	})
}

// PushBatch records a produced batch as a single link item, so the
// central replay applies it through edge.PushBatch over exactly the
// batch boundaries the producing operator emitted — the same
// boundaries the sequential engine cascades inline. The container is
// copied into a pooled batch because producers reuse their emission
// buffers across epochs; the tuples themselves are immutable once
// emitted, so only the container needs to survive until replay.
func (c *capture) PushBatch(b exec.Batch) {
	if len(b) == 0 {
		return
	}
	cp := append(exec.GetBatch(), b...)
	c.isl.outbox = append(c.isl.outbox, linkItem{
		round: c.isl.curRound, tag: c.isl.curTag, kind: itemPushBatch, e: c.e, b: cp,
		mwm: c.isl.curWM,
	})
}

// PushCols records a columnar delivery as a row link item: the batch
// pivots to durable rows here on the producing island (the columns are
// only valid during the call), so the link format, the wire codec, and
// the central replay stay row-oriented and untouched. The central
// replay then applies the item through edge.PushBatch — observably
// identical to the columnar delivery by the ColConsumer contract.
func (c *capture) PushCols(cb *exec.ColBatch) {
	if cb.Len == 0 {
		return
	}
	b := cb.AppendRows(exec.GetBatch())
	c.isl.outbox = append(c.isl.outbox, linkItem{
		round: c.isl.curRound, tag: c.isl.curTag, kind: itemPushBatch, e: c.e, b: b,
		mwm: c.isl.curWM,
	})
}

func (c *capture) Advance(wm uint64) {
	c.isl.outbox = append(c.isl.outbox, linkItem{
		round: c.isl.curRound, tag: c.isl.curTag, kind: itemAdvance, e: c.e, wm: wm,
		mwm: c.isl.curWM,
	})
}

func (c *capture) Flush() {
	c.isl.outbox = append(c.isl.outbox, linkItem{
		round: c.isl.curRound, tag: c.isl.curTag, kind: itemFlush, e: c.e,
		mwm: c.isl.curWM,
	})
}

// tagged is a pre-resolved consumer with its canonical tag.
type tagged struct {
	tag uint64
	c   exec.Consumer
}

// pushAction is one routed tuple delivery within a round.
type pushAction struct {
	tag uint64
	out exec.Consumer
	t   exec.Tuple
}

// pushGroup is one destination partition's buffered tuples within a
// round of the batched driver. Its tag is the round-local sequence
// number of the group's first tuple, so the central replay merge
// interleaves islands' groups in exactly the order the batched
// sequential driver delivers them.
type pushGroup struct {
	tag    uint64
	out    exec.Consumer
	tuples exec.Batch
}

// hostRound is one island's share of one round. Exactly one of pushes
// (scalar mode) and groups (batched mode) is populated.
type hostRound struct {
	round  int
	wm     uint64
	adv    bool // run the island's advance targets at wm
	pushes []pushAction
	groups []pushGroup
	flush  bool // run the island's flush targets
}

// feedMsg carries a batch of rounds for one island; last marks the
// island's final message.
type feedMsg struct {
	isl    *island
	rounds []hostRound
	last   bool
}

// runParallel executes the trace with the parallel engine. The caller
// goroutine runs the central replay loop.
//
//qap:hot
func (r *Runner) runParallel(cursors []*streamCursor) (*Result, error) {
	hosts := r.plan.Hosts
	workers := r.workers
	if workers > hosts {
		workers = hosts
	}
	bs := r.batchSize
	batched := bs > 1

	advTargets, flushTargets := r.buildTargets(cursors)

	feeds := make([]chan feedMsg, workers) //qap:allow hotalloc -- driver setup, once per run
	for g := range feeds {
		feeds[g] = make(chan feedMsg, feedChanCap) //qap:allow hotalloc -- one channel per worker, once per run
	}
	inbox := make(chan linkBatch, 2*hosts) //qap:allow hotalloc -- driver setup, once per run

	// Leaf workers: worker g executes islands g, g+W, 2W, ...
	stall := testStallWorkers
	var workerWG sync.WaitGroup
	for g := 0; g < workers; g++ {
		workerWG.Add(1)
		//qap:allow hotalloc -- one worker goroutine closure per worker, once per run
		go func(feed <-chan feedMsg) {
			defer workerWG.Done()
			// Columnar mode pivots each delivered chunk into this
			// worker-owned scratch batch at the island boundary, so the
			// feed channels and the driver's row grouping are untouched.
			var colScratch exec.ColBatch
			for msg := range feed {
				isl := msg.isl
				last := 0
				for _, hr := range msg.rounds {
					isl.curRound = hr.round
					last = hr.round
					if hr.adv {
						isl.curWM = hr.wm
						// Close the leaf island's monitoring windows at
						// the same boundary the sequential drivers do:
						// before the new round touches any counter.
						if r.winSec > 0 {
							isl.closeWindowsTo(int(hr.wm / r.winSec))
						}
						for _, at := range advTargets[isl.id] {
							isl.curTag = at.tag
							at.c.Advance(hr.wm)
						}
					}
					for _, pa := range hr.pushes {
						isl.curTag = pa.tag
						pa.out.Push(pa.t)
					}
					for gi := range hr.groups {
						g := &hr.groups[gi]
						isl.curTag = g.tag
						for off := 0; off < len(g.tuples); off += bs {
							end := off + bs
							if end > len(g.tuples) {
								end = len(g.tuples)
							}
							chunk := g.tuples[off:end]
							if r.columnar && colScratch.SetFromRows(chunk) {
								exec.PushColsAll(g.out, &colScratch)
							} else {
								exec.PushAll(g.out, chunk)
							}
						}
						exec.PutBatch(g.tuples)
						g.out, g.tuples = nil, nil
					}
					if hr.flush {
						for _, ft := range flushTargets[isl.id] {
							isl.curTag = ft.tag
							ft.c.Flush()
						}
					}
				}
				items := isl.outbox
				isl.outbox = nil
				if stall != nil {
					<-stall
				}
				inbox <- linkBatch{isl: isl.id, through: last, items: items, done: msg.last}
			}
		}(feeds[g])
	}

	// Driver: merge the cursors, route every tuple, and feed the
	// islands their rounds in batches.
	var (
		driverWG sync.WaitGroup
		dAny     bool
		dMax     uint64
	)
	driverWG.Add(1)
	//qap:allow hotalloc -- the driver goroutine and its helpers close once per run
	go func() {
		defer driverWG.Done()
		// rounds[i] accumulates island i's pending hostRounds.
		rounds := make([][]hostRound, hosts) //qap:allow hotalloc -- driver setup, once per run
		pendingRounds := 0
		round := -1
		ship := func(last bool) { //qap:allow hotalloc -- closure built once per run
			for i := 0; i < hosts; i++ {
				msg := feedMsg{isl: r.islands[i], rounds: rounds[i], last: last}
				rounds[i] = nil
				feeds[i%workers] <- msg
			}
			pendingRounds = 0
			// Driver-owned telemetry (one feed message per island);
			// finalize reads it only after driverWG.Wait() below.
			r.engBatches += int64(hosts)
		}
		openRound := func(wm uint64) { //qap:allow hotalloc -- closure built once per run
			round++
			r.engRounds++
			for i := 0; i < hosts; i++ {
				rounds[i] = append(rounds[i], hostRound{round: round, wm: wm, adv: true})
			}
		}
		if batched {
			for _, c := range cursors {
				c.gidx = make([]int, len(c.rt.outs))   //qap:allow hotalloc -- routing scratch, once per cursor per run
				c.gstamp = make([]int, len(c.rt.outs)) //qap:allow hotalloc -- routing scratch, once per cursor per run
				for p := range c.gstamp {
					c.gstamp[p] = -1
				}
			}
		}
		var valSlab []sqlval.Value
		var lastTime uint64
		first := true
		seq := uint64(0) // round-local push sequence
		for {
			best := nextCursor(cursors)
			if best == nil {
				break
			}
			pk := &best.packets[best.pos]
			best.pos++
			dAny = true
			if pk.Time > dMax {
				dMax = pk.Time
			}
			if first || pk.Time > lastTime {
				if !first {
					// Close the round on the splitter's trace shard:
					// the same (round, watermark, packets) triple the
					// sequential drivers record.
					if r.trDriver != nil {
						r.trDriver.Emit(trace.Event{Kind: trace.KindRound, Round: round, WM: lastTime, Rows: int64(seq)})
					}
					pendingRounds++
					if pendingRounds >= r.batchRounds {
						ship(false)
					}
				}
				openRound(pk.Time)
				seq = 0
				lastTime, first = pk.Time, false
			}
			if !batched {
				t := pk.Tuple()
				idx := best.rt.route(t)
				id := best.rt.islands[idx]
				hr := &rounds[id][len(rounds[id])-1]
				hr.pushes = append(hr.pushes, pushAction{
					tag: phasePush | seq, out: best.rt.outs[idx], t: t,
				})
				seq++
				continue
			}
			// Batched: buffer the tuple into its destination's group for
			// this round, tagged with the group's first-tuple sequence.
			if cap(valSlab)-len(valSlab) < netgen.TupleCols {
				valSlab = make([]sqlval.Value, 0, tupleSlabVals) //qap:allow hotalloc -- slab growth, amortized over tupleSlabVals values
			}
			var t exec.Tuple
			valSlab, t = pk.AppendTuple(valSlab)
			idx := best.rt.route(t)
			id := best.rt.islands[idx]
			hr := &rounds[id][len(rounds[id])-1]
			if best.gstamp[idx] != round {
				best.gstamp[idx] = round
				best.gidx[idx] = len(hr.groups)
				hr.groups = append(hr.groups, pushGroup{
					tag: phasePush | seq, out: best.rt.outs[idx], tuples: exec.GetBatch(),
				})
			}
			g := &hr.groups[best.gidx[idx]]
			g.tuples = append(g.tuples, t)
			seq++
		}
		r.emitDriverTail(round, int64(seq), lastTime)
		// The flush round.
		round++
		r.engRounds++
		for i := 0; i < hosts; i++ {
			rounds[i] = append(rounds[i], hostRound{round: round, flush: true})
		}
		ship(true)
		for _, feed := range feeds {
			close(feed)
		}
	}()

	// Central replay on the calling goroutine, with the optional drive
	// timeout guarding each receive so a wedged worker surfaces as a
	// positioned error instead of hanging the run.
	var timer *time.Timer
	recv := func(waiting string) (linkBatch, error) { //qap:allow hotalloc -- replay guard closure, built once per run
		if r.driveTimeout <= 0 {
			return <-inbox, nil
		}
		if timer == nil {
			timer = time.NewTimer(r.driveTimeout) //qap:allow walltime -- stall guard only; a timeout poisons the run, never shapes its outputs
		} else {
			timer.Reset(r.driveTimeout)
		}
		select {
		case b := <-inbox:
			if !timer.Stop() {
				<-timer.C
			}
			return b, nil
		case <-timer.C:
			return linkBatch{}, fmt.Errorf("cluster: parallel drive stalled: no link batch within %s (%s)",
				r.driveTimeout, waiting)
		}
	}
	if err := r.replayLinks(hosts, recv); err != nil {
		// The driver and workers are abandoned mid-stream; the run is
		// poisoned and only the error survives.
		return nil, err
	}

	driverWG.Wait()
	workerWG.Wait()
	return r.finalize(dAny, dMax), nil
}

// buildTargets pre-resolves every island's advance and flush target
// lists in canonical (= tag) order. Advance walks the fed streams in
// cursor order; flush walks every router in sorted-name order.
func (r *Runner) buildTargets(cursors []*streamCursor) (advTargets, flushTargets [][]tagged) {
	hosts := r.plan.Hosts
	advTargets = make([][]tagged, hosts)
	for sIdx, c := range cursors {
		for p, out := range c.rt.outs {
			id := c.rt.islands[p]
			advTargets[id] = append(advTargets[id], tagged{
				tag: phaseAdv | uint64(sIdx*r.plan.Partitions+p), c: out,
			})
		}
	}
	flushTargets = make([][]tagged, hosts)
	for fIdx, name := range r.routerNames {
		rt := r.routers[name]
		for p, out := range rt.outs {
			id := rt.islands[p]
			flushTargets[id] = append(flushTargets[id], tagged{
				tag: phaseFlush | uint64(fIdx*r.plan.Partitions+p), c: out,
			})
		}
	}
	return advTargets, flushTargets
}

// replayLinks is the central replay loop shared by the parallel engine
// and the live backend: a K-way merge of the islands' link items by
// (round, tag), applied to the central island. An island with an empty
// pending queue bounds its next item at (through+1, 0) until its final
// batch arrives. recv supplies the next link batch from whichever
// transport the engine uses (channel or TCP); its argument describes
// which islands the merge is blocked on, for positioned stall errors.
//
//qap:hot
func (r *Runner) replayLinks(hosts int, recv func(waiting string) (linkBatch, error)) error {
	pending := make([][]linkItem, hosts) //qap:allow hotalloc -- replay setup, once per run
	heads := make([]int, hosts)          //qap:allow hotalloc -- replay setup, once per run
	through := make([]int, hosts)        //qap:allow hotalloc -- replay setup, once per run
	done := make([]bool, hosts)          //qap:allow hotalloc -- replay setup, once per run
	for i := range through {
		through[i] = -1
	}
	for {
		best, bestIsItem := -1, false
		var bestRound int
		var bestTag uint64
		for i := 0; i < hosts; i++ {
			var rnd int
			var tg uint64
			isItem := heads[i] < len(pending[i])
			if isItem {
				it := &pending[i][heads[i]]
				rnd, tg = it.round, it.tag
			} else if done[i] {
				continue
			} else {
				rnd, tg = through[i]+1, 0
			}
			if best == -1 || rnd < bestRound || (rnd == bestRound && tg < bestTag) {
				best, bestIsItem, bestRound, bestTag = i, isItem, rnd, tg
			}
		}
		if best == -1 {
			return nil // every island done and drained
		}
		if bestIsItem {
			it := &pending[best][heads[best]]
			// The merged item order is round order, and every item
			// carries its round's watermark, so closing central windows
			// here reproduces the sequential boundary exactly: all
			// central work of earlier rounds has been replayed.
			if r.winSec > 0 {
				r.islands[hosts].closeWindowsTo(int(it.mwm / r.winSec))
			}
			switch it.kind {
			case itemPush:
				it.e.Push(it.t)
			case itemPushBatch:
				it.e.PushBatch(it.b)
				exec.PutBatch(it.b)
				it.b = nil
			case itemAdvance:
				it.e.Advance(it.wm)
			case itemFlush:
				it.e.Flush()
			}
			heads[best]++
			if heads[best] == len(pending[best]) {
				pending[best], heads[best] = nil, 0
			}
			continue
		}
		// The merge is blocked on islands that have not shipped far
		// enough; receive more batches.
		b, err := recv(replayWaiting(through, done))
		if err != nil {
			return err
		}
		r.engLinkItems += int64(len(b.items))
		if len(pending[b.isl]) == 0 {
			pending[b.isl], heads[b.isl] = b.items, 0
		} else {
			pending[b.isl] = append(pending[b.isl], b.items...)
		}
		if b.through > through[b.isl] {
			through[b.isl] = b.through
		}
		if b.done {
			done[b.isl] = true
		}
	}
}

// replayWaiting renders which islands the replay merge is waiting on —
// the coordinates of a drive stall.
func replayWaiting(through []int, done []bool) string {
	var sb strings.Builder
	for i := range through {
		if done[i] {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "island %d shipped through round %d", i, through[i])
	}
	if sb.Len() == 0 {
		return "all islands done"
	}
	return "waiting on " + sb.String()
}
