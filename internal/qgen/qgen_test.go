package qgen

import (
	"fmt"
	"strings"
	"testing"

	"qap/internal/gsql"
	"qap/internal/netgen"
	"qap/internal/plan"
	"qap/internal/schema"
)

// TestGenerateDeterministic: the whole point of the generator is that
// a seed is a complete repro token — same seed, same workload.
func TestGenerateDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a, b := Generate(Config{Seed: seed}), Generate(Config{Seed: seed})
		if a.Queries != b.Queries {
			t.Fatalf("seed %d: query text differs between runs:\n%s\n--- vs ---\n%s", seed, a.Queries, b.Queries)
		}
		if fmt.Sprintf("%+v", a.Trace) != fmt.Sprintf("%+v", b.Trace) {
			t.Fatalf("seed %d: trace config differs: %+v vs %+v", seed, a.Trace, b.Trace)
		}
	}
}

// TestGenerateValid: every generated workload must load through the
// real parser and planner — the oracle depends on it.
func TestGenerateValid(t *testing.T) {
	cat, err := schema.Parse(netgen.SchemaDDL)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 100; seed++ {
		w := Generate(Config{Seed: seed})
		qs, err := gsql.ParseQuerySet(w.Queries)
		if err != nil {
			t.Fatalf("seed %d: generated queries do not parse: %v\n%s", seed, err, w.Queries)
		}
		if _, err := plan.Build(cat, qs); err != nil {
			t.Fatalf("seed %d: generated queries do not plan: %v\n%s", seed, err, w.Queries)
		}
		if len(qs.Queries) < 3 {
			t.Fatalf("seed %d: only %d queries generated", seed, len(qs.Queries))
		}
		if w.Trace.DurationSec <= 0 || w.Trace.PacketsPerSec <= 0 {
			t.Fatalf("seed %d: degenerate trace %+v", seed, w.Trace)
		}
	}
}

// TestGenerateVariety: across a modest seed range the generator must
// exercise every feature family the differential oracle is meant to
// stress — aggregation, joins, outer joins, HAVING, WINDOW, holistic
// aggregates, and DAG fan-out (a query reading another query).
func TestGenerateVariety(t *testing.T) {
	var all strings.Builder
	fanOut := false
	for seed := int64(0); seed < 150; seed++ {
		w := Generate(Config{Seed: seed})
		all.WriteString(w.Queries)
		all.WriteByte('\n')
		if strings.Contains(w.Queries, "FROM q") || strings.Contains(w.Queries, "JOIN q") {
			fanOut = true
		}
	}
	text := all.String()
	for _, want := range []string{
		"GROUP BY", "WHERE", "HAVING", "WINDOW",
		"OUTER JOIN", "JOIN", "COUNT(*)", "SUM(", "MIN(", "MAX(", "AVG(",
		"COUNT_DISTINCT(", "OR_AGGR(",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("150 seeds never produced %q", want)
		}
	}
	if !fanOut {
		t.Error("150 seeds never produced DAG fan-out (a query reading another query)")
	}
}

// TestGenerateMaxQueries honors the explicit size knob.
func TestGenerateMaxQueries(t *testing.T) {
	w := Generate(Config{Seed: 7, MaxQueries: 2})
	qs, err := gsql.ParseQuerySet(w.Queries)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs.Queries) != 2 {
		t.Fatalf("MaxQueries=2 produced %d queries", len(qs.Queries))
	}
}
