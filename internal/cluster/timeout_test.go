package cluster

import (
	"strings"
	"testing"
	"time"

	"qap/internal/core"
	"qap/internal/live"
	"qap/internal/netgen"
	"qap/internal/optimizer"
)

// runEngineErr is runEngine without the success assertion: plan
// building must work, but the run itself hands back whatever the engine
// returns — the entry point for tests about the failure paths.
func runEngineErr(t testing.TB, queries string, ps core.Set, o optimizer.Options, streams map[string][]netgen.Packet, cfg RunConfig) (*Result, error) {
	t.Helper()
	g := buildGraph(t, queries)
	p, err := optimizer.Build(g, ps, o)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r.RunStreams(streams)
}

// TestParallelDriveTimeout wedges every worker right before it ships
// its link batch: the replay loop must fail with the positioned
// drive-stalled error instead of hanging the run.
func TestParallelDriveTimeout(t *testing.T) {
	stall := make(chan struct{})
	testStallWorkers = stall
	defer func() { testStallWorkers = nil }()

	tr := smallTrace(t)
	cfg := RunConfig{
		Costs: DefaultCosts(), Params: testParams,
		Workers: 2, BatchSize: 256,
		DriveTimeout: 100 * time.Millisecond,
	}
	o := optimizer.Options{Hosts: 2, PartitionsPerHost: 2, PartialAgg: true}
	_, err := runEngineErr(t, flowsQuery, core.MustParseSet("srcIP, destIP"), o,
		map[string][]netgen.Packet{"TCP": tr.Packets}, cfg)
	close(stall) // release the wedged workers so the run's goroutines drain
	if err == nil {
		t.Fatal("wedged workers did not fail the run")
	}
	for _, want := range []string{"parallel drive stalled", "100ms"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
}

// TestParallelNoTimeoutByDefault: a zero DriveTimeout means no guard —
// the same workload without the wedge completes with the guard armed,
// proving the timer doesn't fire on a healthy run.
func TestParallelNoTimeoutByDefault(t *testing.T) {
	tr := smallTrace(t)
	cfg := RunConfig{
		Costs: DefaultCosts(), Params: testParams,
		Workers: 2, BatchSize: 256,
		DriveTimeout: 30 * time.Second,
	}
	o := optimizer.Options{Hosts: 2, PartitionsPerHost: 2, PartialAgg: true}
	if _, err := runEngineErr(t, flowsQuery, core.MustParseSet("srcIP, destIP"), o,
		map[string][]netgen.Packet{"TCP": tr.Packets}, cfg); err != nil {
		t.Fatalf("healthy run tripped the drive guard: %v", err)
	}
}

// TestLiveDriveTimeout stalls every transport write long past the drive
// guard: the live replay loop must fail with its positioned
// drive-stalled error instead of hanging on the wedged nodes.
func TestLiveDriveTimeout(t *testing.T) {
	tr := smallTrace(t)
	fp := &live.FaultPlan{Faults: []live.Fault{
		{Host: -1, Session: -1, Write: -1, Action: live.FaultStall, Stall: time.Second},
	}}
	cfg := liveRunConfig(1, 256, LiveConfig{Faults: fp, Timeout: 5 * time.Second})
	cfg.DriveTimeout = 150 * time.Millisecond
	o := optimizer.Options{Hosts: 2, PartitionsPerHost: 2, PartialAgg: true}
	_, err := runEngineErr(t, flowsQuery, core.MustParseSet("srcIP, destIP"), o,
		map[string][]netgen.Packet{"TCP": tr.Packets}, cfg)
	if err == nil {
		t.Fatal("stalled nodes did not fail the run")
	}
	if !strings.Contains(err.Error(), "live drive stalled") {
		t.Fatalf("error %q is not the positioned drive-stalled error", err)
	}
	if fp.Hits() == 0 {
		t.Fatal("stall fault never fired")
	}
}
