// Command qap-bench regenerates the data behind every measured figure
// of the paper's evaluation (Figures 8, 9, 10, 11, 13, 14) and prints
// the same series as text tables.
//
// Usage:
//
//	qap-bench [-fig 8|10|13|all] [-rate pps] [-duration sec]
//	          [-hosts n] [-leaf]
//
// A figure number selects the experiment that produces it (CPU and
// network figures come from the same sweep: 8 prints 8+9, 10 prints
// 10+11, 13 prints 13+14).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"qap"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 8, 9, 10, 11, 13, 14, or all")
	rate := flag.Int("rate", 1500, "trace packet rate (packets/sec)")
	duration := flag.Int("duration", 300, "trace duration (sec)")
	hosts := flag.Int("hosts", 4, "maximum cluster size")
	seed := flag.Int64("seed", 1, "trace random seed")
	leaf := flag.Bool("leaf", false, "also print the Section 6.1 leaf-load series")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "simulator worker goroutines (1 = sequential engine; results are identical)")
	flag.Parse()

	cfg := qap.DefaultExperimentConfig()
	cfg.Trace.Seed = *seed
	cfg.Trace.PacketsPerSec = *rate
	cfg.Trace.DurationSec = *duration
	cfg.MaxHosts = *hosts
	cfg.Workers = *workers

	type experiment struct {
		ids []string
		run func(qap.ExperimentConfig) (*qap.Figure, *qap.Figure, error)
	}
	experiments := []experiment{
		{[]string{"8", "9"}, qap.Figures8and9},
		{[]string{"10", "11"}, qap.Figures10and11},
		{[]string{"13", "14"}, qap.Figures13and14},
	}

	ran := false
	for _, ex := range experiments {
		if *fig != "all" && *fig != ex.ids[0] && *fig != ex.ids[1] {
			continue
		}
		ran = true
		cpu, net, err := ex.run(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println(cpu.Table())
		fmt.Println(net.Table())
	}
	if !ran {
		fatal(fmt.Errorf("unknown figure %q (use 8, 9, 10, 11, 13, 14, or all)", *fig))
	}

	if *leaf {
		loads, err := qap.LeafLoads(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Section 6.1 leaf-node CPU load (Naive configuration):")
		fmt.Printf("%8s  %10s\n", "# nodes", "leaf CPU %")
		for i, l := range loads {
			fmt.Printf("%8d  %10.1f\n", i+1, l)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "qap-bench:", err)
	os.Exit(1)
}
